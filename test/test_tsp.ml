(* TSP substrate: instances, tours, 2-opt/Or-opt deltas, constructive
   heuristics, and the SA adapter. *)

let case name f = Alcotest.test_case name `Quick f
let checkf eps name expected actual = Alcotest.check (Alcotest.float eps) name expected actual

(* Unit square corners: the optimal tour is the perimeter, length 4. *)
let square () = Tsp_instance.create [| (0., 0.); (1., 0.); (1., 1.); (0., 1.) |]

let test_instance_distances () =
  let inst = square () in
  checkf 1e-9 "adjacent" 1. (Tsp_instance.distance inst 0 1);
  checkf 1e-9 "diagonal" (sqrt 2.) (Tsp_instance.distance inst 0 2);
  checkf 1e-9 "symmetric" (Tsp_instance.distance inst 1 3) (Tsp_instance.distance inst 3 1);
  checkf 1e-9 "self zero" 0. (Tsp_instance.distance inst 2 2)

let test_instance_validation () =
  match Tsp_instance.create [| (0., 0.); (1., 1.) |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for n < 3"

let test_random_instances () =
  let rng = Rng.create ~seed:1 in
  let inst = Tsp_instance.random_uniform rng ~n:20 in
  Alcotest.check Alcotest.int "size" 20 (Tsp_instance.size inst);
  for i = 0 to 19 do
    let x, y = Tsp_instance.coord inst i in
    Alcotest.check Alcotest.bool "in unit square" true (x >= 0. && x < 1. && y >= 0. && y < 1.)
  done;
  let clustered = Tsp_instance.random_clustered rng ~n:20 ~clusters:3 ~spread:0.01 in
  Alcotest.check Alcotest.int "clustered size" 20 (Tsp_instance.size clustered)

let test_tour_identity_length () =
  let t = Tour.identity (square ()) in
  checkf 1e-9 "perimeter" 4. (Tour.length t);
  checkf 1e-9 "matches recompute" (Tour.recompute_length t) (Tour.length t)

let test_tour_of_order_validation () =
  let inst = square () in
  (match Tour.of_order inst [| 0; 1; 2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong length accepted");
  match Tour.of_order inst [| 0; 1; 2; 2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate accepted"

let test_tour_city_at_wraps () =
  let t = Tour.of_order (square ()) [| 2; 0; 3; 1 |] in
  Alcotest.check Alcotest.int "position 0" 2 (Tour.city_at t 0);
  Alcotest.check Alcotest.int "wraps forward" 2 (Tour.city_at t 4);
  Alcotest.check Alcotest.int "wraps backward" 1 (Tour.city_at t (-1))

let test_two_opt_delta_matches_recompute () =
  let rng = Rng.create ~seed:2 in
  let inst = Tsp_instance.random_uniform rng ~n:12 in
  let t = Tour.random rng inst in
  for _ = 1 to 100 do
    let a, b = Rng.pair_distinct rng 12 in
    let i = min a b and j = max a b in
    if not (i = 0 && j = 11) then begin
      let predicted = Tour.two_opt_delta t i j in
      let before = Tour.length t in
      Tour.two_opt t i j;
      checkf 1e-9 "delta exact" (before +. predicted) (Tour.length t);
      checkf 1e-9 "cache consistent" (Tour.recompute_length t) (Tour.length t)
    end
  done

let test_two_opt_involution () =
  let rng = Rng.create ~seed:3 in
  let inst = Tsp_instance.random_uniform rng ~n:10 in
  let t = Tour.random rng inst in
  let before = Tour.order t in
  Tour.two_opt t 2 7;
  Tour.two_opt t 2 7;
  Alcotest.check Alcotest.(array int) "double reversal restores" before (Tour.order t)

let test_two_opt_full_reversal_is_zero_delta () =
  let t = Tour.identity (square ()) in
  checkf 1e-9 "whole-tour reversal is free" 0. (Tour.two_opt_delta t 0 3)

let test_two_opt_uncrosses () =
  (* Order 0 2 1 3 on the square crosses itself; 2-opt of positions 1,2
     uncrosses it back to the perimeter. *)
  let t = Tour.of_order (square ()) [| 0; 2; 1; 3 |] in
  checkf 1e-9 "crossed length" (2. +. (2. *. sqrt 2.)) (Tour.length t);
  Tour.two_opt t 1 2;
  checkf 1e-9 "uncrossed to perimeter" 4. (Tour.length t)

let test_or_opt_delta_matches () =
  let rng = Rng.create ~seed:4 in
  let inst = Tsp_instance.random_uniform rng ~n:11 in
  let t = Tour.random rng inst in
  let tried = ref 0 in
  for seg = 0 to 8 do
    for len = 1 to 2 do
      for dest = 0 to 10 do
        let inside = dest >= seg - 1 && dest < seg + len in
        let wrap = seg = 0 && dest = 10 in
        if seg + len <= 11 && (not inside) && not wrap then begin
          incr tried;
          let copy = Tour.copy t in
          let predicted = Tour.or_opt_delta copy ~seg ~len ~dest in
          let before = Tour.length copy in
          Tour.or_opt copy ~seg ~len ~dest;
          checkf 1e-9 "or-opt delta exact" (before +. predicted) (Tour.length copy);
          checkf 1e-9 "or-opt cache consistent" (Tour.recompute_length copy) (Tour.length copy);
          (* still a permutation *)
          let sorted = Tour.order copy in
          Array.sort compare sorted;
          Alcotest.check Alcotest.(array int) "still a tour" (Array.init 11 (fun i -> i)) sorted
        end
      done
    done
  done;
  Alcotest.check Alcotest.bool "tried many moves" true (!tried > 100)

let test_nearest_neighbor_square () =
  let t = Tsp_heuristics.nearest_neighbor (square ()) ~start:0 in
  checkf 1e-9 "NN finds the perimeter here" 4. (Tour.length t)

let test_cheapest_insertion_square () =
  let t = Tsp_heuristics.cheapest_insertion (square ()) in
  checkf 1e-9 "perimeter" 4. (Tour.length t)

let test_convex_hull_square_plus_centre () =
  let inst = Tsp_instance.create [| (0., 0.); (1., 0.); (1., 1.); (0., 1.); (0.5, 0.5) |] in
  let hull = Tsp_heuristics.convex_hull inst in
  Alcotest.check Alcotest.int "hull has the 4 corners" 4 (List.length hull);
  Alcotest.check Alcotest.bool "centre excluded" false (List.mem 4 hull);
  List.iter (fun c -> Alcotest.check Alcotest.bool "corner" true (c < 4)) hull

let test_hull_insertion_valid_tour () =
  let rng = Rng.create ~seed:5 in
  let inst = Tsp_instance.random_uniform rng ~n:25 in
  let t = Tsp_heuristics.hull_insertion inst in
  let sorted = Tour.order t in
  Array.sort compare sorted;
  Alcotest.check Alcotest.(array int) "valid tour" (Array.init 25 (fun i -> i)) sorted;
  checkf 1e-9 "length cache sound" (Tour.recompute_length t) (Tour.length t)

let test_two_opt_descent_improves () =
  let rng = Rng.create ~seed:6 in
  let inst = Tsp_instance.random_uniform rng ~n:30 in
  let t = Tour.random rng inst in
  let before = Tour.length t in
  let applied = Tsp_heuristics.two_opt_descent t in
  Alcotest.check Alcotest.bool "applies moves" true (applied > 0);
  Alcotest.check Alcotest.bool "improves" true (Tour.length t < before);
  (* local optimality: no improving 2-opt remains *)
  for i = 0 to 28 do
    for j = i + 1 to 29 do
      if not (i = 0 && j = 29) then
        Alcotest.check Alcotest.bool "no improving reversal left" true
          (Tour.two_opt_delta t i j >= -1e-9)
    done
  done

let test_heuristic_ordering_on_uniform () =
  (* The quality ladder that holds on uniform instances: 2-opt-polished
     beats raw NN; hull+insertion beats raw NN. *)
  let rng = Rng.create ~seed:7 in
  let inst = Tsp_instance.random_uniform rng ~n:50 in
  let nn = Tour.length (Tsp_heuristics.nearest_neighbor inst ~start:0) in
  let polished =
    let t = Tsp_heuristics.nearest_neighbor inst ~start:0 in
    ignore (Tsp_heuristics.two_opt_descent t);
    Tour.length t
  in
  let hull = Tour.length (Tsp_heuristics.hull_insertion inst) in
  Alcotest.check Alcotest.bool "2-opt polish helps" true (polished <= nn);
  Alcotest.check Alcotest.bool "hull+insertion beats raw NN" true (hull <= nn)

let test_or_opt_pass_improves_or_keeps () =
  let rng = Rng.create ~seed:8 in
  let inst = Tsp_instance.random_uniform rng ~n:20 in
  let t = Tour.random rng inst in
  let before = Tour.length t in
  ignore (Tsp_heuristics.or_opt_pass t);
  Alcotest.check Alcotest.bool "never worse" true (Tour.length t <= before +. 1e-9)

let test_two_opt_restarts_monotone () =
  let inst = Tsp_instance.random_uniform (Rng.create ~seed:9) ~n:25 in
  let one = Tour.length (Tsp_heuristics.two_opt_restarts (Rng.create ~seed:10) inst ~restarts:1) in
  let five = Tour.length (Tsp_heuristics.two_opt_restarts (Rng.create ~seed:10) inst ~restarts:5) in
  Alcotest.check Alcotest.bool "more restarts never worse (same stream prefix)" true (five <= one)

(* ------------------------------ adapter --------------------------- *)

let test_adapter_roundtrip () =
  let rng = Rng.create ~seed:11 in
  let inst = Tsp_instance.random_uniform rng ~n:15 in
  let t = Tour.random rng inst in
  let before = Tour.order t in
  for _ = 1 to 100 do
    let m = Tsp_problem.random_move rng t in
    Tsp_problem.apply t m;
    Tsp_problem.revert t m
  done;
  Alcotest.check Alcotest.(array int) "restored" before (Tour.order t);
  checkf 1e-6 "length cache intact" (Tour.recompute_length t) (Tour.length t)

let test_adapter_moves_exclude_full_reversal () =
  let t = Tour.identity (square ()) in
  let moves = List.of_seq (Tsp_problem.moves t) in
  Alcotest.check Alcotest.int "C(4,2) - 1 moves" 5 (List.length moves);
  Alcotest.check Alcotest.bool "no (0, n-1)" false (List.mem (0, 3) moves)

let test_sa_beats_random_tour () =
  let rng = Rng.create ~seed:12 in
  let inst = Tsp_instance.random_uniform rng ~n:30 in
  let start = Tour.random rng inst in
  let initial = Tour.length start in
  let module E = Figure1.Make (Tsp_problem) in
  let p =
    E.params ~gfun:Gfun.six_temp_annealing
      ~schedule:(Schedule.geometric ~y1:0.3 ~ratio:0.6 ~k:6)
      ~budget:(Budget.Evaluations 8000) ()
  in
  let r = E.run rng p start in
  Alcotest.check Alcotest.bool "at least 30% shorter" true
    (r.Mc_problem.best_cost < 0.7 *. initial)

(* ------------------------------ file I/O -------------------------- *)

let test_io_roundtrip () =
  let inst = Tsp_instance.random_uniform (Rng.create ~seed:13) ~n:12 in
  match Tsp_io.of_string (Tsp_io.to_string ~name:"t12" inst) with
  | Error msg -> Alcotest.fail msg
  | Ok inst' ->
      Alcotest.check Alcotest.int "size" 12 (Tsp_instance.size inst');
      for i = 0 to 11 do
        for j = 0 to 11 do
          checkf 1e-9 "distances preserved" (Tsp_instance.distance inst i j)
            (Tsp_instance.distance inst' i j)
        done
      done

let test_io_parses_tsplib_style () =
  let text =
    "NAME : tiny\nCOMMENT : hand written\nTYPE : TSP\nDIMENSION : 3\n\
     EDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n1 0.0 0.0\n2 3.0 0.0\n3 0.0 4.0\nEOF\n"
  in
  match Tsp_io.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok inst ->
      Alcotest.check Alcotest.int "3 cities" 3 (Tsp_instance.size inst);
      checkf 1e-9 "3-4-5 triangle" 5. (Tsp_instance.distance inst 1 2)

let test_io_rejects_bad_input () =
  let expect_error text =
    match Tsp_io.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted: " ^ text)
  in
  expect_error "";
  expect_error "DIMENSION : 5\nNODE_COORD_SECTION\n1 0 0\n2 1 1\n3 2 2\nEOF\n";
  expect_error
    "EDGE_WEIGHT_TYPE : GEO\nNODE_COORD_SECTION\n1 0 0\n2 1 1\n3 2 2\nEOF\n";
  expect_error "NODE_COORD_SECTION\n1 zero 0\n2 1 1\n3 2 2\nEOF\n";
  expect_error "NODE_COORD_SECTION\n1 0 0\n2 1 1\nEOF\n" (* < 3 cities *);
  expect_error "GIBBERISH SECTION\n"

let test_io_tolerates_tabs_and_blanks () =
  let text = "DIMENSION : 3\n\nNODE_COORD_SECTION\n1\t0\t0\n\n2 1 0\n3 0 1\n" in
  match Tsp_io.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok inst -> Alcotest.check Alcotest.int "3 cities" 3 (Tsp_instance.size inst)

let prop_two_opt_keeps_permutation =
  QCheck.Test.make ~name:"qcheck: random 2-opt walks keep tours valid"
    (QCheck.make
       QCheck.Gen.(
         int_range 4 15 >>= fun n ->
         int >|= fun seed -> (n, seed)))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let inst = Tsp_instance.random_uniform rng ~n in
      let t = Tour.random rng inst in
      for _ = 1 to 30 do
        let m = Tsp_problem.random_move rng t in
        Tsp_problem.apply t m
      done;
      let sorted = Tour.order t in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i)
      && Float.abs (Tour.recompute_length t -. Tour.length t) < 1e-6)

let suite =
  [
    case "instance distances" test_instance_distances;
    case "instance validation" test_instance_validation;
    case "random instances" test_random_instances;
    case "tour identity length" test_tour_identity_length;
    case "tour order validation" test_tour_of_order_validation;
    case "city_at wraps" test_tour_city_at_wraps;
    case "2-opt delta matches recompute" test_two_opt_delta_matches_recompute;
    case "2-opt is an involution" test_two_opt_involution;
    case "full reversal has zero delta" test_two_opt_full_reversal_is_zero_delta;
    case "2-opt uncrosses the square" test_two_opt_uncrosses;
    case "or-opt delta matches recompute" test_or_opt_delta_matches;
    case "nearest neighbor on the square" test_nearest_neighbor_square;
    case "cheapest insertion on the square" test_cheapest_insertion_square;
    case "convex hull of square + centre" test_convex_hull_square_plus_centre;
    case "hull insertion yields a valid tour" test_hull_insertion_valid_tour;
    case "2-opt descent reaches local optimum" test_two_opt_descent_improves;
    case "heuristic quality ordering" test_heuristic_ordering_on_uniform;
    case "or-opt pass never hurts" test_or_opt_pass_improves_or_keeps;
    case "2-opt restarts monotone" test_two_opt_restarts_monotone;
    case "adapter apply/revert roundtrip" test_adapter_roundtrip;
    case "adapter excludes the full reversal" test_adapter_moves_exclude_full_reversal;
    case "SA shortens a random tour" test_sa_beats_random_tour;
    case "tsplib roundtrip" test_io_roundtrip;
    case "tsplib parsing" test_io_parses_tsplib_style;
    case "tsplib rejects bad input" test_io_rejects_bad_input;
    case "tsplib tolerates tabs and blanks" test_io_tolerates_tabs_and_blanks;
    QCheck_alcotest.to_alcotest prop_two_opt_keeps_permutation;
  ]
