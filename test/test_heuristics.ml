(* Goto constructive heuristic, local search, and the Linarr_problem
   adapters. *)

let case name f = Alcotest.test_case name `Quick f

let path4 () =
  Netlist.create ~n_elements:4 ~pins:[| [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |] |]

let test_goto_path_is_optimal () =
  (* On a path graph the chain order has density 1, which is optimal. *)
  Alcotest.check Alcotest.int "density 1" 1 (Goto.density (path4 ()))

let test_goto_starts_with_lightest () =
  let nl =
    Netlist.create ~n_elements:4
      ~pins:[| [| 0; 1 |]; [| 0; 2 |]; [| 0; 3 |]; [| 1; 2 |] |]
  in
  (* degrees: 0 -> 3, 1 -> 2, 2 -> 2, 3 -> 1 *)
  let order = Goto.order nl in
  Alcotest.check Alcotest.int "element 3 first" 3 order.(0)

let test_goto_order_is_permutation () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 10 do
    let nl = Netlist.random_nola rng ~elements:12 ~nets:50 ~min_pins:2 ~max_pins:4 in
    let order = Goto.order nl in
    let sorted = Array.copy order in
    Array.sort compare sorted;
    Alcotest.check Alcotest.(array int) "permutation" (Array.init 12 (fun i -> i)) sorted
  done

let test_goto_deterministic () =
  let nl = Netlist.random_gola (Rng.create ~seed:2) ~elements:10 ~nets:40 in
  Alcotest.check Alcotest.(array int) "same order twice" (Goto.order nl) (Goto.order nl)

let test_goto_beats_random_on_average () =
  (* The paper's observation: Goto is far better than a random start. *)
  let rng = Rng.create ~seed:3 in
  let better = ref 0 in
  for _ = 1 to 10 do
    let nl = Netlist.random_gola rng ~elements:15 ~nets:150 in
    let random_density = Arrangement.density (Arrangement.random rng nl) in
    if Goto.density nl < random_density then incr better
  done;
  Alcotest.check Alcotest.bool "Goto better on at least 9 of 10" true (!better >= 9)

let test_goto_empty_and_single () =
  let empty = Netlist.create ~n_elements:0 ~pins:[||] in
  Alcotest.check Alcotest.(array int) "empty" [||] (Goto.order empty);
  let single = Netlist.create ~n_elements:1 ~pins:[||] in
  Alcotest.check Alcotest.(array int) "single" [| 0 |] (Goto.order single)

let test_descent_reaches_local_optimum () =
  let rng = Rng.create ~seed:4 in
  let nl = Netlist.random_gola rng ~elements:10 ~nets:40 in
  let arr = Arrangement.random rng nl in
  let report = Local_search.pairwise_descent arr in
  Alcotest.check Alcotest.int "final density recorded" (Arrangement.density arr)
    report.Local_search.final_density;
  (* verify local optimality: no swap improves *)
  let d = Arrangement.density arr in
  for p = 0 to 8 do
    for q = p + 1 to 9 do
      Arrangement.swap_positions arr p q;
      Alcotest.check Alcotest.bool "no improving swap left" true (Arrangement.density arr >= d);
      Arrangement.swap_positions arr p q
    done
  done

let test_descent_steepest_matches_quality () =
  let rng = Rng.create ~seed:5 in
  let nl = Netlist.random_gola rng ~elements:10 ~nets:40 in
  let a = Arrangement.random rng nl in
  let b = Arrangement.copy a in
  let ra = Local_search.pairwise_descent ~steepest:false a in
  let rb = Local_search.pairwise_descent ~steepest:true b in
  Alcotest.check Alcotest.bool "both descend" true
    (ra.Local_search.final_density <= Arrangement.density_of_order nl (Arrangement.order a)
    && rb.Local_search.final_density <= ra.Local_search.final_density + 5)

let test_descent_on_optimal_is_noop () =
  let arr = Arrangement.create (path4 ()) in
  let r = Local_search.pairwise_descent arr in
  Alcotest.check Alcotest.int "no moves taken" 0 r.Local_search.moves_taken;
  Alcotest.check Alcotest.int "density unchanged" 1 r.Local_search.final_density

let test_random_restart () =
  let rng = Rng.create ~seed:6 in
  let nl = Netlist.random_gola rng ~elements:10 ~nets:40 in
  let best = Local_search.random_restart rng nl ~restarts:5 ~best_of_descents:true in
  let single = Local_search.random_restart (Rng.create ~seed:7) nl ~restarts:1 ~best_of_descents:false in
  Alcotest.check Alcotest.bool "5 descents <= 1 raw random" true
    (Arrangement.density best <= Arrangement.density single);
  Alcotest.check_raises "restarts 0"
    (Invalid_argument "Local_search.random_restart: restarts <= 0") (fun () ->
      ignore (Local_search.random_restart rng nl ~restarts:0 ~best_of_descents:false))

(* ---------------------- Linarr_problem adapters ------------------- *)

let test_swap_adapter_roundtrip () =
  let rng = Rng.create ~seed:8 in
  let nl = Netlist.random_gola rng ~elements:8 ~nets:20 in
  let arr = Arrangement.random rng nl in
  let before = Arrangement.order arr in
  for _ = 1 to 50 do
    let m = Linarr_problem.Swap.random_move rng arr in
    Linarr_problem.Swap.apply arr m;
    Linarr_problem.Swap.revert arr m
  done;
  Alcotest.check Alcotest.(array int) "apply/revert restores" before (Arrangement.order arr);
  Arrangement.check arr

let test_swap_adapter_cost () =
  let rng = Rng.create ~seed:9 in
  let nl = Netlist.random_gola rng ~elements:8 ~nets:20 in
  let arr = Arrangement.random rng nl in
  Alcotest.check (Alcotest.float 0.) "cost = density"
    (float_of_int (Arrangement.density arr))
    (Linarr_problem.Swap.cost arr)

let test_swap_moves_enumeration () =
  let rng = Rng.create ~seed:10 in
  let nl = Netlist.random_gola rng ~elements:6 ~nets:10 in
  let arr = Arrangement.random rng nl in
  let moves = List.of_seq (Linarr_problem.Swap.moves arr) in
  Alcotest.check Alcotest.int "6 choose 2" 15 (List.length moves);
  let uniq = List.sort_uniq compare moves in
  Alcotest.check Alcotest.int "all distinct" 15 (List.length uniq);
  List.iter
    (fun (p, q) ->
      Alcotest.check Alcotest.bool "ordered and in range" true (0 <= p && p < q && q < 6))
    moves

let test_swap_moves_match_unranking () =
  (* Regression for the Seq.unfold rewrite of [all_position_pairs]: the
     sequence must equal the old O(n)-per-element unranked enumeration
     element-for-element, for a sweep of sizes including 0 and 1. *)
  let unranked n =
    let pair_of idx =
      let rec find p remaining =
        let row = n - 1 - p in
        if remaining < row then (p, p + 1 + remaining)
        else find (p + 1) (remaining - row)
      in
      find 0 idx
    in
    List.init (n * (n - 1) / 2) pair_of
  in
  List.iter
    (fun n ->
      let nl = Netlist.create ~n_elements:n ~pins:[||] in
      let arr = Arrangement.create nl in
      Alcotest.check
        Alcotest.(list (pair int int))
        (Printf.sprintf "n = %d" n) (unranked n)
        (List.of_seq (Linarr_problem.Swap.moves arr)))
    [ 0; 1; 2; 3; 7; 12; 31 ]

let test_relocate_adapter_roundtrip () =
  let rng = Rng.create ~seed:11 in
  let nl = Netlist.random_nola rng ~elements:9 ~nets:25 ~min_pins:2 ~max_pins:4 in
  let arr = Arrangement.random rng nl in
  let before = Arrangement.order arr in
  for _ = 1 to 30 do
    let m = Linarr_problem.Relocate.random_move rng arr in
    Linarr_problem.Relocate.apply arr m;
    Linarr_problem.Relocate.revert arr m
  done;
  Alcotest.check Alcotest.(array int) "apply/revert restores" before (Arrangement.order arr);
  Arrangement.check arr

let test_relocate_moves_enumeration () =
  let rng = Rng.create ~seed:12 in
  let nl = Netlist.random_gola rng ~elements:5 ~nets:8 in
  let arr = Arrangement.random rng nl in
  let moves = List.of_seq (Linarr_problem.Relocate.moves arr) in
  Alcotest.check Alcotest.int "n(n-1) relocations" 20 (List.length moves)

let test_sum_cuts_adapter () =
  let rng = Rng.create ~seed:13 in
  let nl = Netlist.random_gola rng ~elements:8 ~nets:20 in
  let arr = Arrangement.random rng nl in
  Alcotest.check (Alcotest.float 0.) "cost = sum of cuts"
    (float_of_int (Arrangement.sum_of_cuts arr))
    (Linarr_problem.Swap_sum_cuts.cost arr)

(* --------------------------- exact solver ------------------------- *)

let test_exact_path () =
  let d, order = Linarr_exact.optimum (path4 ()) in
  Alcotest.check Alcotest.int "path optimum 1" 1 d;
  Alcotest.check Alcotest.int "order achieves it" 1
    (Arrangement.density_of_order (path4 ()) order)

let test_exact_parallel_nets () =
  (* All nets between the same pair: density = net count whatever the
     order. *)
  let nl = Netlist.create ~n_elements:3 ~pins:[| [| 0; 1 |]; [| 0; 1 |] |] in
  Alcotest.check Alcotest.int "forced density" 2 (Linarr_exact.optimal_density nl)

let test_exact_star () =
  (* Star K_{1,4}: the centre has 4 incident edges; any order splits
     them across the centre's two sides, so density = ceil(4/2) = 2
     with the centre in the middle. *)
  let nl =
    Netlist.create ~n_elements:5 ~pins:[| [| 0; 1 |]; [| 0; 2 |]; [| 0; 3 |]; [| 0; 4 |] |]
  in
  Alcotest.check Alcotest.int "star optimum" 2 (Linarr_exact.optimal_density nl)

let test_exact_limit () =
  let nl = Netlist.random_gola (Rng.create ~seed:50) ~elements:12 ~nets:20 in
  match Linarr_exact.optimum nl with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "limit not enforced"

let test_exact_matches_exhaustive_density () =
  (* Cross-check the branch-and-bound against plain enumeration. *)
  let rng = Rng.create ~seed:51 in
  for _ = 1 to 5 do
    let nl = Netlist.random_gola (Rng.split rng) ~elements:6 ~nets:12 in
    let exact = Linarr_exact.optimal_density nl in
    let best = ref max_int in
    let rec permutations prefix remaining =
      match remaining with
      | [] ->
          let d = Arrangement.density_of_order nl (Array.of_list (List.rev prefix)) in
          if d < !best then best := d
      | _ ->
          List.iter
            (fun e ->
              permutations (e :: prefix) (List.filter (fun x -> x <> e) remaining))
            remaining
    in
    permutations [] [ 0; 1; 2; 3; 4; 5 ];
    Alcotest.check Alcotest.int "matches exhaustive" !best exact
  done

let test_no_heuristic_beats_exact () =
  let rng = Rng.create ~seed:52 in
  for _ = 1 to 5 do
    let nl = Netlist.random_nola (Rng.split rng) ~elements:7 ~nets:15 ~min_pins:2 ~max_pins:4 in
    let exact = Linarr_exact.optimal_density nl in
    Alcotest.check Alcotest.bool "Goto >= optimum" true (Goto.density nl >= exact);
    let arr = Arrangement.random (Rng.split rng) nl in
    let r = Local_search.pairwise_descent arr in
    Alcotest.check Alcotest.bool "descent >= optimum" true
      (r.Local_search.final_density >= exact)
  done

let prop_goto_never_worse_than_worst =
  QCheck.Test.make ~name:"qcheck: Goto density within [best possible, netlist nets]"
    (QCheck.make
       QCheck.Gen.(
         int_range 3 10 >>= fun elements ->
         int_range 1 30 >>= fun nets ->
         int >|= fun seed -> (elements, nets, seed)))
    (fun (elements, nets, seed) ->
      let nl = Netlist.random_gola (Rng.create ~seed) ~elements ~nets in
      let d = Goto.density nl in
      d >= 0 && d <= nets)

let prop_descent_never_increases =
  QCheck.Test.make ~name:"qcheck: pairwise descent never increases density"
    (QCheck.make
       QCheck.Gen.(
         int_range 3 10 >>= fun elements ->
         int_range 1 25 >>= fun nets ->
         int >|= fun seed -> (elements, nets, seed)))
    (fun (elements, nets, seed) ->
      let rng = Rng.create ~seed in
      let nl = Netlist.random_gola rng ~elements ~nets in
      let arr = Arrangement.random rng nl in
      let before = Arrangement.density arr in
      let r = Local_search.pairwise_descent arr in
      r.Local_search.final_density <= before)

let suite =
  [
    case "goto: optimal on a path" test_goto_path_is_optimal;
    case "goto: starts with the lightest element" test_goto_starts_with_lightest;
    case "goto: produces a permutation" test_goto_order_is_permutation;
    case "goto: deterministic" test_goto_deterministic;
    case "goto: beats random starts" test_goto_beats_random_on_average;
    case "goto: empty and single-element netlists" test_goto_empty_and_single;
    case "descent: reaches a pairwise local optimum" test_descent_reaches_local_optimum;
    case "descent: steepest variant descends too" test_descent_steepest_matches_quality;
    case "descent: no-op at an optimum" test_descent_on_optimal_is_noop;
    case "random restart: more restarts never hurt" test_random_restart;
    case "swap adapter: apply/revert roundtrip" test_swap_adapter_roundtrip;
    case "swap adapter: cost is density" test_swap_adapter_cost;
    case "swap adapter: move enumeration" test_swap_moves_enumeration;
    case "swap adapter: unfold enumeration matches old unranking"
      test_swap_moves_match_unranking;
    case "relocate adapter: apply/revert roundtrip" test_relocate_adapter_roundtrip;
    case "relocate adapter: move enumeration" test_relocate_moves_enumeration;
    case "sum-of-cuts adapter cost" test_sum_cuts_adapter;
    case "exact: path optimum" test_exact_path;
    case "exact: forced parallel nets" test_exact_parallel_nets;
    case "exact: star graph" test_exact_star;
    case "exact: element limit enforced" test_exact_limit;
    case "exact: matches plain enumeration" test_exact_matches_exhaustive_density;
    case "exact: no heuristic beats it" test_no_heuristic_beats_exact;
    QCheck_alcotest.to_alcotest prop_goto_never_worse_than_worst;
    QCheck_alcotest.to_alcotest prop_descent_never_increases;
  ]
