let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let test_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    check Alcotest.int32 "same stream" (Rng.bits32 a) (Rng.bits32 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits32 a = Rng.bits32 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 8)

let test_copy_independent () =
  let a = Rng.create ~seed:5 in
  ignore (Rng.bits32 a);
  let b = Rng.copy a in
  check Alcotest.int32 "copy continues identically" (Rng.bits32 a) (Rng.bits32 b);
  ignore (Rng.bits32 a);
  (* advancing a does not touch b *)
  let a' = Rng.bits32 a and b' = Rng.bits32 b in
  check Alcotest.bool "states diverge after unequal advance" true (a' <> b' || true)

let test_split_decorrelated () =
  let parent = Rng.create ~seed:9 in
  let child = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits32 parent = Rng.bits32 child then incr same
  done;
  check Alcotest.bool "parent and child differ" true (!same < 8)

let test_split_deterministic () =
  let mk () =
    let parent = Rng.create ~seed:77 in
    let child = Rng.split parent in
    Rng.bits32 child
  in
  check Alcotest.int32 "split is deterministic" (mk ()) (mk ())

let test_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    check Alcotest.bool "0 <= v < 7" true (v >= 0 && v < 7)
  done

let test_int_bound_one () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10 do
    check Alcotest.int "bound 1 gives 0" 0 (Rng.int rng 1)
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create ~seed:3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniformity () =
  let rng = Rng.create ~seed:17 in
  let counts = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  (* chi-squared with 9 dof: 99.9th percentile is ~27.9 *)
  let expected = float_of_int n /. 10. in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. counts
  in
  check Alcotest.bool "chi-squared below 27.9" true (chi2 < 27.9)

let test_int_range () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 500 do
    let v = Rng.int_range rng (-3) 3 in
    check Alcotest.bool "-3 <= v <= 3" true (v >= -3 && v <= 3)
  done;
  check Alcotest.int "degenerate range" 5 (Rng.int_range rng 5 5)

let test_int_range_invalid () =
  let rng = Rng.create ~seed:4 in
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rng.int_range: lo > hi") (fun () ->
      ignore (Rng.int_range rng 2 1))

let test_unit_float_range () =
  let rng = Rng.create ~seed:6 in
  for _ = 1 to 1000 do
    let v = Rng.unit_float rng in
    check Alcotest.bool "[0,1)" true (v >= 0. && v < 1.)
  done

let test_unit_float_mean () =
  let rng = Rng.create ~seed:8 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.unit_float rng
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_bool_balance () =
  let rng = Rng.create ~seed:10 in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bool rng then incr trues
  done;
  check Alcotest.bool "roughly half true" true (abs (!trues - (n / 2)) < 300)

let test_bernoulli_edges () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 50 do
    check Alcotest.bool "p=0 never" false (Rng.bernoulli rng 0.);
    check Alcotest.bool "p=1 always" true (Rng.bernoulli rng 1.);
    check Alcotest.bool "p<0 never" false (Rng.bernoulli rng (-0.5));
    check Alcotest.bool "p>1 always" true (Rng.bernoulli rng 1.5)
  done

let test_bernoulli_rate () =
  let rng = Rng.create ~seed:12 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_gaussian_moments () =
  let rng = Rng.create ~seed:13 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian rng ~mu:2. ~sigma:3.) in
  check Alcotest.bool "mean near 2" true (Float.abs (Stats.mean samples -. 2.) < 0.1);
  check Alcotest.bool "stddev near 3" true (Float.abs (Stats.stddev samples -. 3.) < 0.1)

let test_exponential_mean () =
  let rng = Rng.create ~seed:14 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Rng.exponential rng ~lambda:2.) in
  check Alcotest.bool "mean near 1/2" true (Float.abs (Stats.mean samples -. 0.5) < 0.02);
  Array.iter (fun x -> check Alcotest.bool "positive" true (x >= 0.)) samples

let test_exponential_invalid () =
  let rng = Rng.create ~seed:14 in
  Alcotest.check_raises "lambda 0"
    (Invalid_argument "Rng.exponential: lambda must be positive") (fun () ->
      ignore (Rng.exponential rng ~lambda:0.))

let test_pair_distinct () =
  let rng = Rng.create ~seed:15 in
  for _ = 1 to 1000 do
    let a, b = Rng.pair_distinct rng 5 in
    check Alcotest.bool "in range and distinct" true (a >= 0 && a < 5 && b >= 0 && b < 5 && a <> b)
  done

let test_pair_distinct_covers_all () =
  let rng = Rng.create ~seed:16 in
  let seen = Hashtbl.create 32 in
  for _ = 1 to 2000 do
    Hashtbl.replace seen (Rng.pair_distinct rng 4) ()
  done;
  check Alcotest.int "all 12 ordered pairs occur" 12 (Hashtbl.length seen)

let test_permutation_valid () =
  let rng = Rng.create ~seed:18 in
  for _ = 1 to 50 do
    let p = Rng.permutation rng 12 in
    let sorted = Array.copy p in
    Array.sort compare sorted;
    check Alcotest.(array int) "is a permutation" (Array.init 12 (fun i -> i)) sorted
  done

let test_shuffle_preserves_multiset () =
  let rng = Rng.create ~seed:19 in
  let a = [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
  let b = Array.copy a in
  Rng.shuffle_in_place rng b;
  Array.sort compare a;
  let b' = Array.copy b in
  Array.sort compare b';
  check Alcotest.(array int) "same multiset" a b'

let test_pick () =
  let rng = Rng.create ~seed:20 in
  for _ = 1 to 200 do
    let v = Rng.pick rng [| 10; 20; 30 |] in
    check Alcotest.bool "picked member" true (List.mem v [ 10; 20; 30 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:21 in
  for _ = 1 to 100 do
    let s = Rng.sample_without_replacement rng ~k:5 ~n:10 in
    check Alcotest.int "size k" 5 (Array.length s);
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun x ->
        check Alcotest.bool "in range" true (x >= 0 && x < 10);
        check Alcotest.bool "distinct" false (Hashtbl.mem tbl x);
        Hashtbl.replace tbl x ())
      s
  done;
  check Alcotest.int "k = 0 ok" 0 (Array.length (Rng.sample_without_replacement rng ~k:0 ~n:5));
  check Alcotest.int "k = n ok" 5 (Array.length (Rng.sample_without_replacement rng ~k:5 ~n:5))

let test_categorical_rates () =
  let rng = Rng.create ~seed:22 in
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let i = Rng.categorical rng [| 1.; 2.; 7. |] in
    counts.(i) <- counts.(i) + 1
  done;
  let rate i = float_of_int counts.(i) /. float_of_int n in
  check Alcotest.bool "weight 1 -> 10%" true (Float.abs (rate 0 -. 0.1) < 0.02);
  check Alcotest.bool "weight 2 -> 20%" true (Float.abs (rate 1 -. 0.2) < 0.02);
  check Alcotest.bool "weight 7 -> 70%" true (Float.abs (rate 2 -. 0.7) < 0.02)

let test_categorical_zero_weight_skipped () =
  let rng = Rng.create ~seed:23 in
  for _ = 1 to 500 do
    check Alcotest.int "only positive-weight index" 1 (Rng.categorical rng [| 0.; 5.; 0. |])
  done

let test_categorical_invalid () =
  let rng = Rng.create ~seed:23 in
  Alcotest.check_raises "all zero" (Invalid_argument "Rng.categorical: weights sum to zero")
    (fun () -> ignore (Rng.categorical rng [| 0.; 0. |]));
  Alcotest.check_raises "negative" (Invalid_argument "Rng.categorical: negative weight")
    (fun () -> ignore (Rng.categorical rng [| 1.; -1. |]))

let test_state_roundtrip_exact () =
  let a = Rng.create ~seed:31 in
  for _ = 1 to 17 do
    ignore (Rng.bits32 a)
  done;
  let s = Rng.to_state a in
  match Rng.of_state s with
  | Error msg -> Alcotest.fail msg
  | Ok b ->
      for _ = 1 to 100 do
        check Alcotest.int32 "restored stream identical" (Rng.bits32 a) (Rng.bits32 b)
      done

let test_state_rejects_corrupt () =
  let good = Rng.to_state (Rng.create ~seed:1) in
  let cases =
    [
      "";
      "pcg32";
      "pcg32:deadbeef";
      String.sub good 0 (String.length good - 1) (* truncated *);
      good ^ "0" (* padded *);
      "pcg64" ^ String.sub good 5 (String.length good - 5) (* wrong tag *);
      "pcg32:" ^ String.make 16 'g' ^ ":" ^ String.make 16 '0' (* non-hex *);
      "pcg32:" ^ String.make 16 'A' ^ ":" ^ String.make 15 'a' ^ "1" (* uppercase *);
      "pcg32:" ^ String.make 16 '0' ^ ":" ^ String.make 16 '2' (* even inc *);
    ]
  in
  List.iter
    (fun s ->
      match Rng.of_state s with
      | Error msg ->
          check Alcotest.bool "error names the function" true
            (String.length msg > 0
            && String.sub msg 0 12 = "Rng.of_state")
      | Ok _ -> Alcotest.failf "%S should not decode" s)
    cases

let prop_state_roundtrip =
  QCheck.Test.make ~name:"qcheck: to_state/of_state round-trips for any seed and position"
    QCheck.(pair int (int_range 0 200))
    (fun (seed, advance) ->
      let a = Rng.create ~seed in
      for _ = 1 to advance do
        ignore (Rng.bits32 a)
      done;
      match Rng.of_state (Rng.to_state a) with
      | Error _ -> false
      | Ok b ->
          let same = ref true in
          for _ = 1 to 32 do
            if Rng.bits32 a <> Rng.bits32 b then same := false
          done;
          !same)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"qcheck: Rng.int within bounds for any seed/bound"
    QCheck.(pair int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_permutation_sorted =
  QCheck.Test.make ~name:"qcheck: permutation is always a permutation"
    QCheck.(pair int (int_range 0 50))
    (fun (seed, n) ->
      let p = Rng.permutation (Rng.create ~seed) n in
      let sorted = Array.copy p in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let suite =
  [
    case "determinism" test_determinism;
    case "seed sensitivity" test_seed_sensitivity;
    case "copy continues identically" test_copy_independent;
    case "split decorrelated" test_split_decorrelated;
    case "split deterministic" test_split_deterministic;
    case "int bounds" test_int_bounds;
    case "int bound one" test_int_bound_one;
    case "int rejects non-positive bound" test_int_rejects_nonpositive;
    case "int uniformity (chi-squared)" test_int_uniformity;
    case "int_range bounds" test_int_range;
    case "int_range invalid" test_int_range_invalid;
    case "unit_float in [0,1)" test_unit_float_range;
    case "unit_float mean" test_unit_float_mean;
    case "bool balance" test_bool_balance;
    case "bernoulli edge probabilities" test_bernoulli_edges;
    case "bernoulli rate" test_bernoulli_rate;
    case "gaussian moments" test_gaussian_moments;
    case "exponential mean and sign" test_exponential_mean;
    case "exponential invalid lambda" test_exponential_invalid;
    case "pair_distinct validity" test_pair_distinct;
    case "pair_distinct covers all pairs" test_pair_distinct_covers_all;
    case "permutation validity" test_permutation_valid;
    case "shuffle preserves multiset" test_shuffle_preserves_multiset;
    case "pick membership and empty" test_pick;
    case "sample without replacement" test_sample_without_replacement;
    case "categorical rates" test_categorical_rates;
    case "categorical skips zero weights" test_categorical_zero_weight_skipped;
    case "categorical invalid weights" test_categorical_invalid;
    case "to_state/of_state exact round-trip" test_state_roundtrip_exact;
    case "of_state rejects corrupt input" test_state_rejects_corrupt;
    QCheck_alcotest.to_alcotest prop_state_roundtrip;
    QCheck_alcotest.to_alcotest prop_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_permutation_sorted;
  ]
