(* A sa_labd-style request handler module: the service's JSON sinks
   must be pure functions of recorded state, and the fixture policy
   names [Fx_handler.*_to_json] as sinks to hold them to it.
   [status_to_json] is the positive counterexample (reaches the wall
   clock and the ambient RNG); [trace_to_json] carries the same
   effects under an allow directive, exercising suppression for the
   typed rules; [summary_to_json] is the clean negative; [retry_after]
   touches the clock but matches no sink pattern, so it must not be
   flagged either. *)

let status_to_json depth =
  Printf.sprintf "{\"depth\": %d, \"now\": %f, \"token\": %f}" depth
    (Fx_clock.now ()) (Fx_rand.jitter ())

(* sa-lint: allow typed-wallclock-in-report typed-ambient-random-in-report *)
let trace_to_json depth =
  Printf.sprintf "{\"depth\": %d, \"now\": %f, \"token\": %f}" depth
    (Fx_clock.now ()) (Fx_rand.jitter ())

let summary_to_json depth = Printf.sprintf "{\"depth\": %d}" depth

let retry_after deadline = deadline -. Fx_clock.now ()
