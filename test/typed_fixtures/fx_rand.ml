(* sa-lint: allow-file no-stdlib-random *)
(* Ambient RNG draw — the allow-file directive silences the syntactic
   rule so this stays a *typed*-rule counterexample only. *)

let jitter () = Random.float 1.0
