(* The fixture policy's sinks ([Fx_report.*]): [stamped] reaches the
   wall clock two hops down, [to_json] reaches both the clock and the
   ambient RNG, [pure] is the clean negative. *)

let stamped cost = (Fx_deep.tick (), cost)

let to_json cost =
  Printf.sprintf "{\"cost\": %f, \"t\": %f, \"jitter\": %f}" cost
    (Fx_clock.now ()) (Fx_rand.jitter ())

let pure cost = string_of_float cost
