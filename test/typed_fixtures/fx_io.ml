(* Blocking IO behind an innocent-looking helper. *)

let save path line =
  let oc = open_out path in
  output_string oc line;
  close_out oc
