(* Wall-clock reads, one hop below the report code. *)

let now () = Unix.gettimeofday ()
