(* Module-level mutable state, mutated with and without
   synchronization: [bump] is the data-race candidate, [bump_atomic]
   is the negative case (Global_mutable but synced). *)

let hits = ref 0
let bump () = incr hits

let shared = Atomic.make 0
let bump_atomic () = Atomic.incr shared
