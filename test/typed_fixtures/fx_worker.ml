(* Task closures handed to the fixture pool: [crunch] races on
   Fx_state.hits, [persist] reaches blocking IO through Fx_io.save,
   [shout] blocks directly inside the closure, [ok] only touches
   synchronized state — the negative case. *)

let crunch xs =
  Fx_pool.map
    (fun x ->
      Fx_state.bump ();
      x * x)
    xs

let persist xs =
  Fx_pool.run (fun () -> List.iter (fun x -> Fx_io.save "out.txt" x) xs)

let shout () = Fx_pool.run (fun () -> output_string stdout "boom")

(* sa-lint: allow typed-blocking-io-in-worker *)
let flush_logs () = Fx_pool.run (fun () -> flush stdout)

let ok xs =
  Fx_pool.map
    (fun x ->
      Fx_state.bump_atomic ();
      x + 1)
    xs
