(* An extra hop between the report code and the clock, so the
   witness trace has depth to show. *)

let tick () = Fx_clock.now ()
