(* Stand-in scheduler: the fixture policy names [Fx_pool] as the pool
   module, so applications of [run]/[map] below are "task submissions"
   to the typed rules — without dragging the real sa_pool (and its
   domains) into a lint fixture. *)

let run f = f ()
let map f xs = List.map f xs
