(* Bipartition state, Kernighan-Lin, and the partition SA adapter. *)

let case name f = Alcotest.test_case name `Quick f

(* Two triangles joined by one bridge edge: the optimal balanced
   bipartition separates the triangles, cut = 1. *)
let two_triangles () =
  Netlist.create ~n_elements:6
    ~pins:
      [|
        [| 0; 1 |]; [| 1; 2 |]; [| 0; 2 |]; (* triangle A *)
        [| 3; 4 |]; [| 4; 5 |]; [| 3; 5 |]; (* triangle B *)
        [| 2; 3 |]; (* bridge *)
      |]

let test_default_split () =
  let part = Bipartition.create (two_triangles ()) in
  (* first 3 on side A, last 3 on side B: only the bridge is cut *)
  Alcotest.check Alcotest.int "cut 1" 1 (Bipartition.cut part);
  Alcotest.check Alcotest.int "balanced" 0 (Bipartition.imbalance part);
  Alcotest.check Alcotest.int "3 on side B" 3 (Bipartition.size_b part)

let test_explicit_sides () =
  let sides = [| true; false; true; false; true; false |] in
  let part = Bipartition.create ~sides (two_triangles ()) in
  (* alternating split cuts every triangle edge + possibly the bridge:
     edges cut: 0-1 yes, 1-2 yes, 0-2 no, 3-4 yes, 4-5 yes, 3-5 no, 2-3 yes *)
  Alcotest.check Alcotest.int "cut" 5 (Bipartition.cut part);
  Alcotest.check Alcotest.bool "side of 0" true (Bipartition.side part 0);
  Alcotest.check Alcotest.bool "side of 1" false (Bipartition.side part 1)

let test_sides_length_checked () =
  match Bipartition.create ~sides:[| true |] (two_triangles ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_toggle_updates_cut () =
  let part = Bipartition.create (two_triangles ()) in
  Bipartition.toggle part 2;
  (* element 2 moves to side B: edges 0-2, 1-2 now cut; bridge 2-3 now
     internal *)
  Alcotest.check Alcotest.int "cut after toggle" 2 (Bipartition.cut part);
  Alcotest.check Alcotest.int "imbalance 2" 2 (Bipartition.imbalance part);
  Bipartition.check part;
  Bipartition.toggle part 2;
  Alcotest.check Alcotest.int "toggle is an involution" 1 (Bipartition.cut part);
  Bipartition.check part

let test_swap_preserves_balance () =
  let part = Bipartition.create (two_triangles ()) in
  Bipartition.swap part 2 3;
  Alcotest.check Alcotest.int "still balanced" 0 (Bipartition.imbalance part);
  Bipartition.check part;
  (* sides become {0,1,3} | {2,4,5}: edges 0-2, 1-2, 3-4, 3-5 and the
     bridge 2-3 are all cut *)
  Alcotest.check Alcotest.int "cut after swap" 5 (Bipartition.cut part)

let test_swap_same_side_noop () =
  let part = Bipartition.create (two_triangles ()) in
  let before = Bipartition.cut part in
  Bipartition.swap part 0 1;
  Alcotest.check Alcotest.int "no-op" before (Bipartition.cut part)

let test_random_balanced () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 20 do
    let nl = Netlist.random_gola (Rng.split rng) ~elements:10 ~nets:20 in
    let part = Bipartition.random_balanced (Rng.split rng) nl in
    Alcotest.check Alcotest.int "balanced" 0 (Bipartition.imbalance part);
    Bipartition.check part
  done

let test_random_balanced_odd () =
  let nl = Netlist.random_gola (Rng.create ~seed:2) ~elements:7 ~nets:10 in
  let part = Bipartition.random_balanced (Rng.create ~seed:3) nl in
  Alcotest.check Alcotest.int "odd imbalance 1" 1 (Bipartition.imbalance part)

let test_multi_pin_cut () =
  (* A 3-pin net is cut iff its pins straddle the sides. *)
  let nl = Netlist.create ~n_elements:4 ~pins:[| [| 0; 1; 2 |]; [| 1; 2; 3 |] |] in
  let part = Bipartition.create ~sides:[| false; false; false; true |] nl in
  Alcotest.check Alcotest.int "only the straddling net" 1 (Bipartition.cut part);
  Bipartition.toggle part 0;
  (* now {0,1,2} straddles too *)
  Alcotest.check Alcotest.int "both cut" 2 (Bipartition.cut part);
  Bipartition.check part

let test_copy_independent () =
  let part = Bipartition.create (two_triangles ()) in
  let snap = Bipartition.copy part in
  Bipartition.toggle part 0;
  Alcotest.check Alcotest.int "copy untouched" 1 (Bipartition.cut snap);
  Bipartition.check snap

(* ------------------------------- KL ------------------------------- *)

let test_kl_finds_triangle_split () =
  (* Start from the worst alternating split; KL must recover the
     natural partition with cut 1. *)
  let sides = [| true; false; true; false; true; false |] in
  let part = Bipartition.create ~sides (two_triangles ()) in
  let passes = Kl.refine part in
  Alcotest.check Alcotest.int "optimal cut" 1 (Bipartition.cut part);
  Alcotest.check Alcotest.bool "at least one pass" true (passes >= 1);
  Alcotest.check Alcotest.int "balance kept" 0 (Bipartition.imbalance part);
  Bipartition.check part

let test_kl_never_increases_cut () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 10 do
    let nl = Netlist.random_gola (Rng.split rng) ~elements:16 ~nets:40 in
    let part = Bipartition.random_balanced (Rng.split rng) nl in
    let before = Bipartition.cut part in
    ignore (Kl.refine part);
    Alcotest.check Alcotest.bool "cut <= initial" true (Bipartition.cut part <= before);
    Alcotest.check Alcotest.int "balance kept" 0 (Bipartition.imbalance part);
    Bipartition.check part
  done

let test_kl_idempotent_at_fixpoint () =
  let nl = Netlist.random_gola (Rng.create ~seed:5) ~elements:12 ~nets:30 in
  let part = Bipartition.random_balanced (Rng.create ~seed:6) nl in
  ignore (Kl.refine part);
  let cut = Bipartition.cut part in
  Alcotest.check Alcotest.int "second refine finds nothing" 0 (Kl.refine part);
  Alcotest.check Alcotest.int "cut unchanged" cut (Bipartition.cut part)

let test_kl_rejects_hypergraphs () =
  let nl = Netlist.create ~n_elements:4 ~pins:[| [| 0; 1; 2 |] |] in
  let part = Bipartition.create nl in
  match Kl.refine part with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for multi-pin nets"

let test_kl_run () =
  let nl = Netlist.random_gola (Rng.create ~seed:7) ~elements:20 ~nets:60 in
  let part = Kl.run (Rng.create ~seed:8) nl in
  Alcotest.check Alcotest.int "balanced" 0 (Bipartition.imbalance part);
  Bipartition.check part

(* ------------------------------- FM -------------------------------- *)

let test_fm_finds_triangle_split () =
  let sides = [| true; false; true; false; true; false |] in
  let part = Bipartition.create ~sides (two_triangles ()) in
  let passes = Fm.refine part in
  Alcotest.check Alcotest.int "optimal cut" 1 (Bipartition.cut part);
  Alcotest.check Alcotest.bool "at least one pass" true (passes >= 1);
  Alcotest.check Alcotest.bool "balance within bound" true (Bipartition.imbalance part <= 1);
  Bipartition.check part

let test_fm_never_increases_cut () =
  let rng = Rng.create ~seed:20 in
  for _ = 1 to 10 do
    let nl = Netlist.random_gola (Rng.split rng) ~elements:17 ~nets:40 in
    let part = Bipartition.random_balanced (Rng.split rng) nl in
    let before = Bipartition.cut part in
    ignore (Fm.refine part);
    Alcotest.check Alcotest.bool "cut <= initial" true (Bipartition.cut part <= before);
    Alcotest.check Alcotest.bool "imbalance <= 1" true (Bipartition.imbalance part <= 1);
    Bipartition.check part
  done

let test_fm_handles_hypergraphs () =
  (* Two 3-pin cliques-as-nets joined by one straddling net; FM must
     uncut everything but the bridge. *)
  let nl =
    Netlist.create ~n_elements:6 ~pins:[| [| 0; 1; 2 |]; [| 3; 4; 5 |]; [| 2; 3 |] |]
  in
  let sides = [| false; true; false; true; false; true |] in
  let part = Bipartition.create ~sides nl in
  Alcotest.check Alcotest.int "everything cut initially" 3 (Bipartition.cut part);
  ignore (Fm.refine part);
  Alcotest.check Alcotest.int "only the bridge remains" 1 (Bipartition.cut part);
  Bipartition.check part

let test_fm_idempotent () =
  let nl = Netlist.random_nola (Rng.create ~seed:21) ~elements:14 ~nets:30 ~min_pins:2 ~max_pins:4 in
  let part = Bipartition.random_balanced (Rng.create ~seed:22) nl in
  ignore (Fm.refine part);
  let cut = Bipartition.cut part in
  Alcotest.check Alcotest.int "no further passes" 0 (Fm.refine part);
  Alcotest.check Alcotest.int "cut unchanged" cut (Bipartition.cut part)

let test_fm_wider_balance_never_worse () =
  let nl = Netlist.random_gola (Rng.create ~seed:23) ~elements:20 ~nets:60 in
  let tight = Bipartition.random_balanced (Rng.create ~seed:24) nl in
  let loose = Bipartition.copy tight in
  ignore (Fm.refine ~max_imbalance:1 tight);
  ignore (Fm.refine ~max_imbalance:4 loose);
  Alcotest.check Alcotest.bool "looser bound at least as good" true
    (Bipartition.cut loose <= Bipartition.cut tight);
  Alcotest.check Alcotest.bool "loose bound respected" true (Bipartition.imbalance loose <= 4)

let test_fm_validation () =
  let nl = Netlist.random_gola (Rng.create ~seed:25) ~elements:8 ~nets:12 in
  let part = Bipartition.random_balanced (Rng.create ~seed:26) nl in
  (match Fm.refine ~max_imbalance:0 part with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_imbalance 0 accepted");
  let skewed = Bipartition.create ~sides:(Array.make 8 true) nl in
  match Fm.refine skewed with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "skewed start accepted"

let test_fm_matches_kl_on_graphs () =
  (* Both should land in the same quality region on random graphs. *)
  let rng = Rng.create ~seed:27 in
  let total_fm = ref 0 and total_kl = ref 0 in
  for _ = 1 to 8 do
    let nl = Netlist.random_gola (Rng.split rng) ~elements:24 ~nets:70 in
    let start = Bipartition.random_balanced (Rng.split rng) nl in
    let a = Bipartition.copy start and b = Bipartition.copy start in
    ignore (Fm.refine a);
    ignore (Kl.refine b);
    total_fm := !total_fm + Bipartition.cut a;
    total_kl := !total_kl + Bipartition.cut b
  done;
  Alcotest.check Alcotest.bool "within 30% of each other" true
    (float_of_int !total_fm <= 1.3 *. float_of_int !total_kl
    && float_of_int !total_kl <= 1.3 *. float_of_int !total_fm)

let prop_fm_cut_sound =
  QCheck.Test.make ~name:"qcheck: FM leaves a consistent, no-worse partition"
    (QCheck.make
       QCheck.Gen.(
         int_range 4 16 >>= fun elements ->
         int_range 1 30 >>= fun nets ->
         int >|= fun seed -> (elements, nets, seed)))
    (fun (elements, nets, seed) ->
      let rng = Rng.create ~seed in
      let nl = Netlist.random_nola rng ~elements ~nets ~min_pins:2 ~max_pins:(min 4 elements) in
      let part = Bipartition.random_balanced rng nl in
      let before = Bipartition.cut part in
      ignore (Fm.refine part);
      Bipartition.check part;
      Bipartition.cut part <= before && Bipartition.imbalance part <= 1)

(* ------------------------------ k-way ----------------------------- *)

let test_kway_two_equals_bisection () =
  let nl = two_triangles () in
  let r = Kway.partition (Rng.create ~seed:30) nl ~k:2 in
  Alcotest.check Alcotest.int "k" 2 r.Kway.k;
  Alcotest.check Alcotest.int "triangle split found" 1 r.Kway.spanning_nets;
  Alcotest.check Alcotest.(array int) "balanced" [| 3; 3 |] (Kway.part_sizes r)

let test_kway_four_parts () =
  let nl = Netlist.random_gola (Rng.create ~seed:31) ~elements:32 ~nets:80 in
  let r = Kway.partition (Rng.create ~seed:32) nl ~k:4 in
  let sizes = Kway.part_sizes r in
  Alcotest.check Alcotest.int "4 parts" 4 (Array.length sizes);
  Array.iteri
    (fun p s -> Alcotest.check Alcotest.bool (Printf.sprintf "part %d near n/k" p) true (s >= 6 && s <= 10))
    sizes;
  Alcotest.check Alcotest.int "spanning count matches checker" r.Kway.spanning_nets
    (Kway.spanning_nets nl r.Kway.part_of);
  (* every element assigned a valid part *)
  Array.iter
    (fun p -> Alcotest.check Alcotest.bool "part id in range" true (p >= 0 && p < 4))
    r.Kway.part_of

let test_kway_k1_and_kn () =
  let nl = Netlist.random_gola (Rng.create ~seed:33) ~elements:8 ~nets:16 in
  let r1 = Kway.partition (Rng.create ~seed:34) nl ~k:1 in
  Alcotest.check Alcotest.int "k=1 spans nothing" 0 r1.Kway.spanning_nets;
  let r8 = Kway.partition (Rng.create ~seed:35) nl ~k:8 in
  Alcotest.check Alcotest.(array int) "k=n singletons" (Array.make 8 1) (Kway.part_sizes r8);
  Alcotest.check Alcotest.int "every net spans" 16 r8.Kway.spanning_nets

let test_kway_more_parts_more_spanning () =
  let nl = Netlist.random_gola (Rng.create ~seed:36) ~elements:16 ~nets:48 in
  let r2 = Kway.partition (Rng.create ~seed:37) nl ~k:2 in
  let r4 = Kway.partition (Rng.create ~seed:37) nl ~k:4 in
  Alcotest.check Alcotest.bool "finer partition cannot span fewer nets" true
    (r4.Kway.spanning_nets >= r2.Kway.spanning_nets)

let test_kway_validation () =
  let nl = Netlist.random_gola (Rng.create ~seed:38) ~elements:6 ~nets:6 in
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Kway.partition (Rng.create ~seed:39) nl ~k:3);
  invalid (fun () -> Kway.partition (Rng.create ~seed:39) nl ~k:0);
  invalid (fun () -> Kway.partition (Rng.create ~seed:39) nl ~k:8)

let prop_kway_sound =
  QCheck.Test.make ~name:"qcheck: k-way partition is total, balanced-ish, and counted right"
    (QCheck.make
       QCheck.Gen.(
         int_range 0 2 >>= fun log_k ->
         int_range 8 20 >>= fun elements ->
         int_range 0 40 >>= fun nets ->
         int >|= fun seed -> (1 lsl log_k, elements, nets, seed)))
    (fun (k, elements, nets, seed) ->
      let rng = Rng.create ~seed in
      let nl = Netlist.random_nola rng ~elements ~nets:(max 0 nets) ~min_pins:2
          ~max_pins:(min 4 elements) in
      let r = Kway.partition rng nl ~k in
      let sizes = Kway.part_sizes r in
      Array.for_all (fun s -> s > 0) sizes
      && Array.fold_left ( + ) 0 sizes = elements
      && r.Kway.spanning_nets = Kway.spanning_nets nl r.Kway.part_of)

(* ----------------------------- adapter ---------------------------- *)

let test_adapter_moves_cross_sides () =
  let part = Bipartition.create (two_triangles ()) in
  let moves = List.of_seq (Partition_problem.moves part) in
  Alcotest.check Alcotest.int "3 x 3 swaps" 9 (List.length moves);
  List.iter
    (fun (a, b) ->
      Alcotest.check Alcotest.bool "a on A, b on B" true
        ((not (Bipartition.side part a)) && Bipartition.side part b))
    moves

let test_adapter_roundtrip () =
  let rng = Rng.create ~seed:9 in
  let nl = Netlist.random_gola rng ~elements:10 ~nets:30 in
  let part = Bipartition.random_balanced rng nl in
  let before = Bipartition.cut part in
  for _ = 1 to 50 do
    let m = Partition_problem.random_move rng part in
    Partition_problem.apply part m;
    Partition_problem.revert part m
  done;
  Alcotest.check Alcotest.int "cut restored" before (Bipartition.cut part);
  Bipartition.check part

let test_adapter_random_move_valid () =
  let rng = Rng.create ~seed:10 in
  let nl = Netlist.random_gola rng ~elements:8 ~nets:16 in
  let part = Bipartition.random_balanced rng nl in
  for _ = 1 to 200 do
    let a, b = Partition_problem.random_move rng part in
    Alcotest.check Alcotest.bool "opposite sides, A first" true
      ((not (Bipartition.side part a)) && Bipartition.side part b)
  done

let test_sa_on_triangles_finds_optimum () =
  let sides = [| true; false; true; false; true; false |] in
  let part = Bipartition.create ~sides (two_triangles ()) in
  let module E = Figure1.Make (Partition_problem) in
  let p =
    E.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 1.5 |])
      ~budget:(Budget.Evaluations 2000) ()
  in
  let r = E.run (Rng.create ~seed:11) p part in
  Alcotest.check (Alcotest.float 0.) "optimal cut found" 1. r.Mc_problem.best_cost;
  Alcotest.check Alcotest.int "balance preserved" 0 (Bipartition.imbalance part)

let test_sa_vs_kl_shape () =
  (* The extension-table claim in miniature: with a sensible budget, SA
     and KL land in the same quality region (within 25% of each other)
     on a random graph. *)
  let nl = Netlist.random_gola (Rng.create ~seed:12) ~elements:30 ~nets:90 in
  let kl_part = Kl.run (Rng.create ~seed:13) nl in
  let sa_part = Bipartition.random_balanced (Rng.create ~seed:13) nl in
  let module E = Figure1.Make (Partition_problem) in
  let p =
    E.params ~gfun:Gfun.g_one ~schedule:(Schedule.constant ~k:1 1.)
      ~budget:(Budget.Evaluations 20_000) ()
  in
  let r = E.run (Rng.create ~seed:14) p sa_part in
  let kl_cut = float_of_int (Bipartition.cut kl_part) in
  Alcotest.check Alcotest.bool "same quality region" true
    (r.Mc_problem.best_cost <= 1.25 *. kl_cut +. 2.)

let prop_cut_consistent_after_walk =
  QCheck.Test.make ~name:"qcheck: incremental cut matches recompute after random swaps"
    (QCheck.make
       QCheck.Gen.(
         int_range 4 14 >>= fun elements ->
         int_range 0 30 >>= fun nets ->
         int >|= fun seed -> (elements, nets, seed)))
    (fun (elements, nets, seed) ->
      let rng = Rng.create ~seed in
      let nl = Netlist.random_gola rng ~elements ~nets in
      let part = Bipartition.random_balanced rng nl in
      for _ = 1 to 25 do
        let m = Partition_problem.random_move rng part in
        Partition_problem.apply part m
      done;
      match Bipartition.check part with () -> true | exception Failure _ -> false)

let suite =
  [
    case "default split" test_default_split;
    case "explicit sides" test_explicit_sides;
    case "sides length checked" test_sides_length_checked;
    case "toggle updates cut" test_toggle_updates_cut;
    case "swap preserves balance" test_swap_preserves_balance;
    case "same-side swap is a no-op" test_swap_same_side_noop;
    case "random balanced splits" test_random_balanced;
    case "odd element count" test_random_balanced_odd;
    case "multi-pin net cut" test_multi_pin_cut;
    case "copy is independent" test_copy_independent;
    case "KL recovers the triangle split" test_kl_finds_triangle_split;
    case "KL never increases the cut" test_kl_never_increases_cut;
    case "KL idempotent at a fixpoint" test_kl_idempotent_at_fixpoint;
    case "KL rejects hypergraphs" test_kl_rejects_hypergraphs;
    case "KL run from random start" test_kl_run;
    case "FM recovers the triangle split" test_fm_finds_triangle_split;
    case "FM never increases the cut" test_fm_never_increases_cut;
    case "FM handles hypergraphs" test_fm_handles_hypergraphs;
    case "FM idempotent at a fixpoint" test_fm_idempotent;
    case "FM wider balance bound never worse" test_fm_wider_balance_never_worse;
    case "FM argument validation" test_fm_validation;
    case "FM and KL agree on graphs" test_fm_matches_kl_on_graphs;
    QCheck_alcotest.to_alcotest prop_fm_cut_sound;
    case "k-way: k=2 finds the triangle split" test_kway_two_equals_bisection;
    case "k-way: four balanced parts" test_kway_four_parts;
    case "k-way: k=1 and k=n extremes" test_kway_k1_and_kn;
    case "k-way: finer never spans fewer nets" test_kway_more_parts_more_spanning;
    case "k-way: validation" test_kway_validation;
    QCheck_alcotest.to_alcotest prop_kway_sound;
    case "adapter move enumeration" test_adapter_moves_cross_sides;
    case "adapter apply/revert roundtrip" test_adapter_roundtrip;
    case "adapter random moves valid" test_adapter_random_move_valid;
    case "SA finds the triangle optimum" test_sa_on_triangles_finds_optimum;
    case "SA and KL in the same quality region" test_sa_vs_kl_shape;
    QCheck_alcotest.to_alcotest prop_cut_consistent_after_walk;
  ]
