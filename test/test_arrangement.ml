let case name f = Alcotest.test_case name `Quick f

(* Path graph 0-1-2-3: identity order has every cut = 1. *)
let path4 () =
  Netlist.create ~n_elements:4 ~pins:[| [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |] |]

let small_nola () =
  Netlist.create ~n_elements:5
    ~pins:[| [| 0; 4 |]; [| 1; 2; 3 |]; [| 0; 1 |]; [| 3; 4 |] |]

let test_identity_path () =
  let arr = Arrangement.create (path4 ()) in
  Alcotest.check Alcotest.(array int) "cuts all 1" [| 1; 1; 1 |] (Arrangement.cuts arr);
  Alcotest.check Alcotest.int "density 1" 1 (Arrangement.density arr);
  Alcotest.check Alcotest.int "sum 3" 3 (Arrangement.sum_of_cuts arr)

let test_known_density () =
  (* Order 1 0 2 3 on the path: net {0,1} spans 0-1, net {1,2} spans
     0-2, net {2,3} spans 2-3; cuts = [2; 1; 1]. *)
  let arr = Arrangement.create ~order:[| 1; 0; 2; 3 |] (path4 ()) in
  Alcotest.check Alcotest.(array int) "cuts" [| 2; 1; 1 |] (Arrangement.cuts arr);
  Alcotest.check Alcotest.int "density" 2 (Arrangement.density arr)

let test_multi_pin_span () =
  (* Net {1,2,3} at identity order spans positions 1..3: crosses cuts 1
     and 2 once regardless of the middle pin. *)
  let arr = Arrangement.create (small_nola ()) in
  (* nets: {0,4} spans 0..4 -> cuts 0,1,2,3; {1,2,3} -> cuts 1,2;
     {0,1} -> cut 0; {3,4} -> cut 3 *)
  Alcotest.check Alcotest.(array int) "cuts" [| 2; 2; 2; 2 |] (Arrangement.cuts arr);
  Alcotest.check Alcotest.int "density" 2 (Arrangement.density arr)

let test_positions_inverse () =
  let arr = Arrangement.create ~order:[| 2; 0; 3; 1 |] (path4 ()) in
  for p = 0 to 3 do
    Alcotest.check Alcotest.int "inverse" p (Arrangement.position_of arr (Arrangement.element_at arr p))
  done;
  Alcotest.check Alcotest.int "element_at 0" 2 (Arrangement.element_at arr 0);
  Alcotest.check Alcotest.int "position_of 1" 3 (Arrangement.position_of arr 1)

let test_create_validation () =
  let nl = path4 () in
  let bad order =
    match Arrangement.create ~order nl with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad [| 0; 1; 2 |];
  bad [| 0; 1; 2; 2 |];
  bad [| 0; 1; 2; 4 |]

let test_swap_updates_density () =
  let arr = Arrangement.create ~order:[| 1; 0; 2; 3 |] (path4 ()) in
  Arrangement.swap_positions arr 0 1;
  (* back to identity *)
  Alcotest.check Alcotest.(array int) "cuts back to identity" [| 1; 1; 1 |] (Arrangement.cuts arr);
  Arrangement.check arr

let test_swap_self_is_noop () =
  let arr = Arrangement.create (small_nola ()) in
  let before = Arrangement.cuts arr in
  Arrangement.swap_positions arr 2 2;
  Alcotest.check Alcotest.(array int) "unchanged" before (Arrangement.cuts arr)

let test_swap_is_involution () =
  let rng = Rng.create ~seed:4 in
  let nl = Netlist.random_nola rng ~elements:10 ~nets:40 ~min_pins:2 ~max_pins:4 in
  let arr = Arrangement.random rng nl in
  let before = Arrangement.order arr in
  Arrangement.swap_positions arr 3 8;
  Arrangement.swap_positions arr 3 8;
  Alcotest.check Alcotest.(array int) "restored" before (Arrangement.order arr);
  Arrangement.check arr

let test_swap_elements_matches_positions () =
  let nl = path4 () in
  let a = Arrangement.create ~order:[| 2; 0; 3; 1 |] nl in
  let b = Arrangement.copy a in
  Arrangement.swap_elements a 0 1;
  Arrangement.swap_positions b (Arrangement.position_of b 0) (Arrangement.position_of b 1);
  Alcotest.check Alcotest.(array int) "same order" (Arrangement.order a) (Arrangement.order b)

let test_copy_independent () =
  let arr = Arrangement.create (path4 ()) in
  let snapshot = Arrangement.copy arr in
  Arrangement.swap_positions arr 0 3;
  Alcotest.check Alcotest.(array int) "copy unchanged" [| 0; 1; 2; 3 |] (Arrangement.order snapshot);
  Arrangement.check snapshot;
  Arrangement.check arr

let test_relocate_forward () =
  let arr = Arrangement.create (path4 ()) in
  Arrangement.relocate arr ~from_pos:0 ~to_pos:2;
  Alcotest.check Alcotest.(array int) "shifted" [| 1; 2; 0; 3 |] (Arrangement.order arr);
  Arrangement.check arr

let test_relocate_backward () =
  let arr = Arrangement.create (path4 ()) in
  Arrangement.relocate arr ~from_pos:3 ~to_pos:1;
  Alcotest.check Alcotest.(array int) "shifted" [| 0; 3; 1; 2 |] (Arrangement.order arr);
  Arrangement.check arr

let test_relocate_inverse () =
  let rng = Rng.create ~seed:9 in
  let nl = Netlist.random_gola rng ~elements:8 ~nets:20 in
  let arr = Arrangement.random rng nl in
  let before = Arrangement.order arr in
  Arrangement.relocate arr ~from_pos:2 ~to_pos:6;
  Arrangement.relocate arr ~from_pos:6 ~to_pos:2;
  Alcotest.check Alcotest.(array int) "restored" before (Arrangement.order arr)

let test_set_order () =
  let arr = Arrangement.create (path4 ()) in
  Arrangement.set_order arr [| 3; 2; 1; 0 |];
  Alcotest.check Alcotest.(array int) "reversed" [| 3; 2; 1; 0 |] (Arrangement.order arr);
  (* reversal of a path keeps all cuts at 1 *)
  Alcotest.check Alcotest.int "density invariant under reversal" 1 (Arrangement.density arr);
  Arrangement.check arr

let test_density_of_order () =
  Alcotest.check Alcotest.int "one-shot density" 2
    (Arrangement.density_of_order (path4 ()) [| 1; 0; 2; 3 |])

let test_tiny_arrangements () =
  let one = Netlist.create ~n_elements:1 ~pins:[||] in
  let arr = Arrangement.create one in
  Alcotest.check Alcotest.int "single element density 0" 0 (Arrangement.density arr);
  let two = Netlist.create ~n_elements:2 ~pins:[| [| 0; 1 |] |] in
  let arr2 = Arrangement.create two in
  Alcotest.check Alcotest.int "two elements density 1" 1 (Arrangement.density arr2);
  Arrangement.swap_positions arr2 0 1;
  Alcotest.check Alcotest.int "still 1 after swap" 1 (Arrangement.density arr2)

let test_move_argument_validation () =
  let arr = Arrangement.create (path4 ()) in
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Arrangement.swap_positions arr 0 4);
  invalid (fun () -> Arrangement.swap_positions arr (-1) 2);
  invalid (fun () -> Arrangement.swap_elements arr 0 9);
  invalid (fun () -> Arrangement.relocate arr ~from_pos:0 ~to_pos:4);
  invalid (fun () -> Arrangement.set_order arr [| 0; 1; 2 |]);
  (* the failed calls must not have corrupted anything *)
  Arrangement.check arr

let test_sum_of_cuts_tracks_moves () =
  let rng = Rng.create ~seed:41 in
  let nl = Netlist.random_nola rng ~elements:9 ~nets:30 ~min_pins:2 ~max_pins:4 in
  let arr = Arrangement.random rng nl in
  for _ = 1 to 40 do
    let p, q = Rng.pair_distinct rng 9 in
    Arrangement.swap_positions arr p q;
    let fresh = Array.fold_left ( + ) 0 (Arrangement.cuts arr) in
    Alcotest.check Alcotest.int "sum matches cuts" fresh (Arrangement.sum_of_cuts arr)
  done

let test_parallel_nets_count_separately () =
  let nl = Netlist.create ~n_elements:2 ~pins:[| [| 0; 1 |]; [| 0; 1 |]; [| 0; 1 |] |] in
  let arr = Arrangement.create nl in
  Alcotest.check Alcotest.int "three parallel nets" 3 (Arrangement.density arr)

let random_walk_consistency ~elements ~nets ~multi ~steps ~seed =
  let rng = Rng.create ~seed in
  let nl =
    if multi then Netlist.random_nola rng ~elements ~nets ~min_pins:2 ~max_pins:5
    else Netlist.random_gola rng ~elements ~nets
  in
  let arr = Arrangement.random rng nl in
  for step = 1 to steps do
    (match Rng.int rng 3 with
    | 0 ->
        let p, q = Rng.pair_distinct rng elements in
        Arrangement.swap_positions arr p q
    | 1 ->
        let a, b = Rng.pair_distinct rng elements in
        Arrangement.swap_elements arr a b
    | _ ->
        let from_pos, to_pos = Rng.pair_distinct rng elements in
        Arrangement.relocate arr ~from_pos ~to_pos);
    if step mod 7 = 0 then Arrangement.check arr
  done;
  Arrangement.check arr

let test_walk_gola () = random_walk_consistency ~elements:12 ~nets:60 ~multi:false ~steps:300 ~seed:31
let test_walk_nola () = random_walk_consistency ~elements:12 ~nets:60 ~multi:true ~steps:300 ~seed:32
let test_walk_paper_size () =
  random_walk_consistency ~elements:15 ~nets:150 ~multi:false ~steps:200 ~seed:33

let prop_density_matches_recompute =
  let gen =
    QCheck.Gen.(
      int_range 2 12 >>= fun elements ->
      int_range 1 30 >>= fun nets ->
      int >>= fun seed ->
      int_range 0 40 >|= fun swaps -> (elements, nets, seed, swaps))
  in
  QCheck.Test.make ~name:"qcheck: incremental density = density_of_order after random swaps"
    (QCheck.make gen)
    (fun (elements, nets, seed, swaps) ->
      let rng = Rng.create ~seed in
      let nl = Netlist.random_gola rng ~elements ~nets in
      let arr = Arrangement.random rng nl in
      for _ = 1 to swaps do
        let p, q = Rng.pair_distinct rng elements in
        Arrangement.swap_positions arr p q
      done;
      Arrangement.density arr = Arrangement.density_of_order nl (Arrangement.order arr))

let prop_density_bounded_by_nets =
  let gen =
    QCheck.Gen.(
      int_range 2 10 >>= fun elements ->
      int_range 0 25 >>= fun nets ->
      int >|= fun seed -> (elements, nets, seed))
  in
  QCheck.Test.make ~name:"qcheck: 0 <= density <= number of nets"
    (QCheck.make gen)
    (fun (elements, nets, seed) ->
      let rng = Rng.create ~seed in
      let nl = Netlist.random_gola rng ~elements ~nets in
      let arr = Arrangement.random rng nl in
      let d = Arrangement.density arr in
      d >= 0 && d <= nets)

let prop_reversal_preserves_density =
  QCheck.Test.make ~name:"qcheck: reversing the arrangement preserves density"
    (QCheck.make
       QCheck.Gen.(
         int_range 2 10 >>= fun elements ->
         int_range 1 25 >>= fun nets ->
         int >|= fun seed -> (elements, nets, seed)))
    (fun (elements, nets, seed) ->
      let rng = Rng.create ~seed in
      let nl = Netlist.random_gola rng ~elements ~nets in
      let arr = Arrangement.random rng nl in
      let d = Arrangement.density arr in
      let reversed =
        Array.init elements (fun p -> Arrangement.element_at arr (elements - 1 - p))
      in
      Arrangement.density_of_order nl reversed = d)

let suite =
  [
    case "identity path cuts" test_identity_path;
    case "known density" test_known_density;
    case "multi-pin net spans" test_multi_pin_span;
    case "positions inverse" test_positions_inverse;
    case "create validation" test_create_validation;
    case "swap updates density" test_swap_updates_density;
    case "swap with itself is a no-op" test_swap_self_is_noop;
    case "swap is an involution" test_swap_is_involution;
    case "swap_elements matches swap_positions" test_swap_elements_matches_positions;
    case "copy is independent" test_copy_independent;
    case "relocate forward" test_relocate_forward;
    case "relocate backward" test_relocate_backward;
    case "relocate inverse" test_relocate_inverse;
    case "set_order" test_set_order;
    case "density_of_order" test_density_of_order;
    case "tiny arrangements" test_tiny_arrangements;
    case "move argument validation" test_move_argument_validation;
    case "sum of cuts tracks moves" test_sum_of_cuts_tracks_moves;
    case "parallel nets count separately" test_parallel_nets_count_separately;
    case "random walk consistency (GOLA)" test_walk_gola;
    case "random walk consistency (NOLA)" test_walk_nola;
    case "random walk consistency (paper size)" test_walk_paper_size;
    QCheck_alcotest.to_alcotest prop_density_matches_recompute;
    QCheck_alcotest.to_alcotest prop_density_bounded_by_nets;
    QCheck_alcotest.to_alcotest prop_reversal_preserves_density;
  ]
