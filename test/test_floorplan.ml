(* Slicing floorplans: expression invariants, area evaluation, moves,
   realization geometry, and the SA adapter. *)

let case name f = Alcotest.test_case name `Quick f

let two_blocks () = Floorplan.create [| (3, 2); (5, 4) |]

let test_initial_row () =
  let f = two_blocks () in
  (* side by side: width 3 + 5, height max 2 4 *)
  Alcotest.check (Alcotest.pair Alcotest.int Alcotest.int) "bbox" (8, 4)
    (Floorplan.bounding_box f);
  Alcotest.check Alcotest.int "area" 32 (Floorplan.area f);
  Alcotest.check Alcotest.string "expression" "0 1 V" (Floorplan.expression f);
  Floorplan.check f

let test_complement_stacks () =
  let f = two_blocks () in
  Floorplan.apply f (Floorplan.Complement_chain (2, 2));
  (* stacked: width max 3 5, height 2 + 4 *)
  Alcotest.check (Alcotest.pair Alcotest.int Alcotest.int) "bbox" (5, 6)
    (Floorplan.bounding_box f);
  Alcotest.check Alcotest.string "expression" "0 1 H" (Floorplan.expression f);
  Floorplan.check f

let test_rotation () =
  let f = two_blocks () in
  Floorplan.apply f (Floorplan.Rotate 1);
  Alcotest.check (Alcotest.pair Alcotest.int Alcotest.int) "block rotated" (4, 5)
    (Floorplan.block_dims f 1);
  (* 3x2 next to 4x5: bbox 7 x 5 *)
  Alcotest.check Alcotest.int "area" 35 (Floorplan.area f);
  Floorplan.check f

let test_swap_operands () =
  let f = Floorplan.create [| (1, 1); (2, 2); (3, 3) |] in
  Floorplan.apply f (Floorplan.Swap_operands (0, 1));
  Alcotest.check Alcotest.string "swapped" "1 0 V 2 V" (Floorplan.expression f);
  (* area invariant under operand swap of a V row *)
  Alcotest.check Alcotest.int "area" (6 * 3) (Floorplan.area f);
  Floorplan.check f

let test_three_block_tree () =
  (* 0 1 V 2 H: (0|1) stacked under 2 *)
  let f = Floorplan.create [| (3, 2); (5, 4); (4, 3) |] in
  Floorplan.apply f (Floorplan.Complement_chain (4, 4));
  Alcotest.check Alcotest.string "expression" "0 1 V 2 H" (Floorplan.expression f);
  (* (0|1) = 8x4; H with 2 (4x3): width max 8 4 = 8, height 4+3 = 7 *)
  Alcotest.check (Alcotest.pair Alcotest.int Alcotest.int) "bbox" (8, 7)
    (Floorplan.bounding_box f);
  let placements = Floorplan.realize f in
  let rect =
    Alcotest.testable
      (fun fmt (x, y, w, h) -> Format.fprintf fmt "(%d,%d,%d,%d)" x y w h)
      ( = )
  in
  Alcotest.check (Alcotest.array rect) "placements"
    [| (0, 0, 3, 2); (3, 0, 5, 4); (0, 4, 4, 3) |]
    placements;
  Floorplan.check f

let test_invalid_moves_rejected () =
  let f = Floorplan.create [| (1, 1); (2, 2); (3, 3) |] in
  let invalid move =
    match Floorplan.apply f move with
    | exception Invalid_argument _ -> Floorplan.check f
    | _ -> Alcotest.fail "invalid move accepted"
  in
  invalid (Floorplan.Swap_operands (0, 2)) (* position 2 is V *);
  invalid (Floorplan.Complement_chain (0, 0)) (* operand *);
  invalid (Floorplan.Rotate 7);
  (* swapping operand 1 (pos 1) with V (pos 2) gives "0 V 1 2 V":
     prefix "0 V" violates balloting *)
  invalid (Floorplan.Swap_operand_operator 1)

let test_create_validation () =
  (match Floorplan.create [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty accepted");
  match Floorplan.create [| (0, 3) |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero width accepted"

let test_single_block () =
  let f = Floorplan.create [| (6, 7) |] in
  Alcotest.check Alcotest.int "area" 42 (Floorplan.area f);
  Alcotest.check (Alcotest.float 1e-9) "utilization 1" 1. (Floorplan.utilization f);
  Floorplan.check f

let test_moves_self_inverse () =
  let rng = Rng.create ~seed:1 in
  let dims = Array.init 10 (fun _ -> (Rng.int_range rng 1 9, Rng.int_range rng 1 9)) in
  let f = Floorplan.create dims in
  (* random walk, then undo in reverse order *)
  let history = ref [] in
  for _ = 1 to 60 do
    let m = Floorplan.random_move rng f in
    Floorplan.apply f m;
    history := m :: !history
  done;
  Floorplan.check f;
  List.iter (fun m -> Floorplan.apply f m) !history;
  Alcotest.check Alcotest.string "walk fully undone" "0 1 V 2 V 3 V 4 V 5 V 6 V 7 V 8 V 9 V"
    (Floorplan.expression f);
  Floorplan.check f

let test_area_lower_bound () =
  let rng = Rng.create ~seed:2 in
  for _ = 1 to 10 do
    let dims = Array.init 8 (fun _ -> (Rng.int_range rng 1 9, Rng.int_range rng 1 9)) in
    let f = Floorplan.create dims in
    for _ = 1 to 50 do
      Floorplan.apply f (Floorplan.random_move rng f)
    done;
    Alcotest.check Alcotest.bool "area >= total block area" true
      (Floorplan.area f >= Floorplan.total_block_area f);
    Alcotest.check Alcotest.bool "utilization in (0,1]" true
      (Floorplan.utilization f > 0. && Floorplan.utilization f <= 1.)
  done

let test_problem_moves_all_valid () =
  let rng = Rng.create ~seed:3 in
  let dims = Array.init 7 (fun _ -> (Rng.int_range rng 1 9, Rng.int_range rng 1 9)) in
  let f = Floorplan.create dims in
  for _ = 1 to 20 do
    Floorplan.apply f (Floorplan.random_move rng f)
  done;
  Seq.iter
    (fun m ->
      Floorplan.Problem.apply f m;
      Floorplan.check f;
      Floorplan.Problem.revert f m;
      Floorplan.check f)
    (Floorplan.Problem.moves f)

let test_shelf_pack_bounds () =
  let dims = [| (3, 2); (5, 4); (4, 3); (2, 2) |] in
  let total = 6 + 20 + 12 + 4 in
  let packed = Floorplan.shelf_pack dims in
  Alcotest.check Alcotest.bool "at least the block area" true (packed >= total);
  Alcotest.check Alcotest.bool "not absurdly loose" true (packed <= 4 * total)

let test_sa_improves_area () =
  let rng = Rng.create ~seed:4 in
  let dims = Array.init 15 (fun _ -> (Rng.int_range rng 2 10, Rng.int_range rng 2 10)) in
  let f = Floorplan.create dims in
  let initial = Floorplan.area f in
  let module E = Figure1.Make (Floorplan.Problem) in
  let p =
    E.params ~gfun:Gfun.g_one ~schedule:(Schedule.constant ~k:1 1.)
      ~budget:(Budget.Evaluations 6000) ()
  in
  let r = E.run rng p f in
  Alcotest.check Alcotest.bool "at least 20% smaller" true
    (r.Mc_problem.best_cost < 0.8 *. float_of_int initial);
  Alcotest.check Alcotest.bool "good utilization" true
    (Floorplan.utilization r.Mc_problem.best > 0.75);
  Floorplan.check r.Mc_problem.best

let prop_random_walks_stay_valid =
  QCheck.Test.make ~name:"qcheck: floorplan invariants survive random walks"
    (QCheck.make
       QCheck.Gen.(
         int_range 1 12 >>= fun blocks ->
         int >|= fun seed -> (blocks, seed)))
    (fun (blocks, seed) ->
      let rng = Rng.create ~seed in
      let dims =
        Array.init blocks (fun _ -> (Rng.int_range rng 1 9, Rng.int_range rng 1 9))
      in
      let f = Floorplan.create dims in
      for _ = 1 to 40 do
        Floorplan.apply f (Floorplan.random_move rng f)
      done;
      match Floorplan.check f with () -> true | exception Failure _ -> false)

let suite =
  [
    case "initial one-row expression" test_initial_row;
    case "complement stacks the cut" test_complement_stacks;
    case "rotation" test_rotation;
    case "operand swap" test_swap_operands;
    case "three-block tree and realization" test_three_block_tree;
    case "invalid moves rejected and state intact" test_invalid_moves_rejected;
    case "create validation" test_create_validation;
    case "single block" test_single_block;
    case "moves are self-inverse" test_moves_self_inverse;
    case "area bounded below by block area" test_area_lower_bound;
    case "Problem.moves all valid and revertible" test_problem_moves_all_valid;
    case "shelf packing bounds" test_shelf_pack_bounds;
    case "SA shrinks the bounding box" test_sa_improves_area;
    QCheck_alcotest.to_alcotest prop_random_walks_stay_valid;
  ]
