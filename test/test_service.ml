(* The sa_labd service layer, exercised without sockets: the routing
   function is called directly with constructed requests, so every
   admission outcome (202/400/404/405/429/503), the cancel paths, the
   quota clock, the snapshot janitor, graceful drain, and the chaos
   fault matrix run as fast deterministic unit tests.  The socket
   transport itself is covered by test_telemetry and the service-smoke
   alias. *)

let case name f = Alcotest.test_case name `Quick f

let req ?(headers = []) meth path =
  { Telemetry_http.Request.meth; path; version = "HTTP/1.1"; headers }

let body_of (resp : Telemetry_http.response) =
  match resp.Telemetry_http.body with
  | Telemetry_http.Fixed s -> s
  | Telemetry_http.Stream f ->
      (* Only safe on terminal jobs, where the log is closed and the
         stream callback returns after replaying it. *)
      let b = Buffer.create 256 in
      f (Buffer.add_string b);
      Buffer.contents b

let json_of resp =
  match Obs.Json.parse (String.trim (body_of resp)) with
  | Ok j -> j
  | Error e -> Alcotest.failf "response body is not JSON: %s" e

let member name json =
  match Obs.Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "missing member %S" name

let header (resp : Telemetry_http.response) name =
  List.assoc_opt name resp.Telemetry_http.headers

let check_status what want (resp : Telemetry_http.response) =
  Alcotest.check Alcotest.int what want resp.Telemetry_http.status

let tmp () = Filename.temp_dir "sa_service_test" ""

let config ?(runners = 0) ?(max_queue = 64) ?(quota_burst = 16)
    ?(checkpoint_every = 2_000) ?(max_budget = 10_000_000) ?(max_attempts = 3)
    ~dir () =
  {
    (Service.default_config ~dir) with
    runners;
    max_queue;
    quota_burst;
    checkpoint_every;
    max_budget;
    max_attempts;
    base_delay = 0.001;
  }

(* Run [f] against a live service, always draining afterwards so
   runner threads never outlive the test. *)
let with_service ?quota_now cfg f =
  let svc = Service.create ?quota_now cfg in
  Fun.protect ~finally:(fun () -> Service.drain svc) (fun () -> f svc)

let tsp_spec ?(budget = 200_000) ?(seed = 5) ?(extra = "") () =
  Printf.sprintf
    {|{"problem":"tsp","cities":40,"budget":%d,"seed":%d,"gfun":"Metropolis"%s}|}
    budget seed extra

let submit ?headers svc body =
  Service.handle svc (req ?headers "POST" "/jobs") ~body

let get svc path = Service.handle svc (req "GET" path) ~body:""

let await ?(tries = 3_000) what pred =
  let rec go tries =
    if pred () then ()
    else if tries = 0 then Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.01;
      go (tries - 1)
    end
  in
  go tries

let job_status svc id =
  match member "status" (json_of (get svc (Printf.sprintf "/jobs/%d" id))) with
  | Obs.Json.String s -> s
  | _ -> Alcotest.fail "job status is not a string"

let await_done svc id =
  await (Printf.sprintf "job %d" id) (fun () ->
      match job_status svc id with
      | "done" -> true
      | "failed" | "cancelled" -> Alcotest.failf "job %d ended badly" id
      | _ -> false)

(* ----------------------------- quota ----------------------------- *)

let test_quota_bucket () =
  let clock = ref 0. in
  let q = Quota.create ~now:(fun () -> !clock) ~burst:2 ~refill:1. () in
  Alcotest.check Alcotest.bool "first token" true
    (Quota.admit q ~client:"a" = Ok ());
  Alcotest.check Alcotest.bool "second token" true
    (Quota.admit q ~client:"a" = Ok ());
  (match Quota.admit q ~client:"a" with
  | Error s ->
      Alcotest.check Alcotest.bool "retry-after ~1s" true
        (s > 0.5 && s <= 1.0)
  | Ok () -> Alcotest.fail "burst of 2 admitted a third job");
  (* Other tenants are unaffected: buckets are per client. *)
  Alcotest.check Alcotest.bool "other client admits" true
    (Quota.admit q ~client:"b" = Ok ());
  clock := 1.;
  Alcotest.check Alcotest.bool "refilled after a second" true
    (Quota.admit q ~client:"a" = Ok ());
  Alcotest.check Alcotest.int "two clients seen" 2 (Quota.clients q)

let test_quota_bounded_buckets () =
  let clock = ref 0. in
  let q =
    Quota.create ~now:(fun () -> !clock) ~max_clients:2 ~burst:2 ~refill:1. ()
  in
  (* Two live (partially drained) buckets fill the table. *)
  Alcotest.check Alcotest.bool "a admits" true (Quota.admit q ~client:"a" = Ok ());
  Alcotest.check Alcotest.bool "b admits" true (Quota.admit q ~client:"b" = Ok ());
  Alcotest.check Alcotest.int "table at cap" 2 (Quota.clients q);
  (* Past the cap with no idle bucket, fresh names share one overflow
     bucket: cycling the x-client header mints neither fresh bursts
     nor memory. *)
  Alcotest.check Alcotest.bool "overflow token 1" true
    (Quota.admit q ~client:"c" = Ok ());
  Alcotest.check Alcotest.bool "overflow token 2" true
    (Quota.admit q ~client:"d" = Ok ());
  (match Quota.admit q ~client:"e" with
  | Error retry_after ->
      Alcotest.check Alcotest.bool "overflow Retry-After positive" true
        (retry_after > 0.)
  | Ok () -> Alcotest.fail "overflow bucket granted a third burst");
  Alcotest.check Alcotest.int "table still at cap" 2 (Quota.clients q);
  (* A bucket refilled to a full burst carries no throttling state, so
     it is evicted to make room for a genuinely new tenant. *)
  clock := 10.;
  Alcotest.check Alcotest.bool "new tenant after idle eviction" true
    (Quota.admit q ~client:"f" = Ok ());
  Alcotest.check Alcotest.bool "table stays bounded" true
    (Quota.clients q <= 2)

let test_submit_over_quota () =
  let dir = tmp () in
  with_service
    ~quota_now:(fun () -> 0.)
    (config ~dir ~quota_burst:1 ())
    (fun svc ->
      check_status "first submit" 202 (submit svc (tsp_spec ()));
      let resp = submit svc (tsp_spec ()) in
      check_status "over quota" 429 resp;
      (match header resp "Retry-After" with
      | Some s ->
          Alcotest.check Alcotest.bool "Retry-After is a positive int" true
            (match int_of_string_opt s with Some n -> n >= 1 | None -> false)
      | None -> Alcotest.fail "429 without Retry-After");
      (* A different tenant still gets in. *)
      check_status "other client" 202
        (submit ~headers:[ ("x-client", "tenant-b") ] svc (tsp_spec ()));
      let _, _, rejected_quota, _, _ = Service.counters svc in
      Alcotest.check Alcotest.int "rejection counted" 1 rejected_quota)

(* -------------------------- backpressure ------------------------- *)

let test_queue_full () =
  let dir = tmp () in
  with_service (config ~dir ~max_queue:2 ()) (fun svc ->
      check_status "fits 1" 202 (submit svc (tsp_spec ()));
      check_status "fits 2" 202 (submit svc (tsp_spec ()));
      let resp = submit svc (tsp_spec ()) in
      check_status "queue full" 503 resp;
      let j = json_of resp in
      Alcotest.check Alcotest.bool "error says queue full" true
        (member "error" j = Obs.Json.String "queue full");
      Alcotest.check Alcotest.bool "body carries the depth" true
        (member "queue_depth" j = Obs.Json.Int 2);
      let _, _, _, rejected_queue, _ = Service.counters svc in
      Alcotest.check Alcotest.int "rejection counted" 1 rejected_queue;
      Alcotest.check Alcotest.int "queue depth" 2 (Service.queue_depth svc))

(* ---------------------------- routing ---------------------------- *)

let test_routing () =
  let dir = tmp () in
  with_service (config ~dir ()) (fun svc ->
      let check_405 meth path allow =
        let resp = Service.handle svc (req meth path) ~body:"" in
        check_status (meth ^ " " ^ path) 405 resp;
        Alcotest.check
          (Alcotest.option Alcotest.string)
          (path ^ " Allow") (Some allow) (header resp "Allow")
      in
      check_405 "PUT" "/healthz" "GET, HEAD";
      check_405 "DELETE" "/jobs" "GET, HEAD, POST";
      check_405 "POST" "/jobs/1" "GET, HEAD, DELETE";
      check_405 "DELETE" "/jobs/1/events" "GET, HEAD";
      check_status "unknown path" 404 (get svc "/nope");
      check_status "unknown job" 404 (get svc "/jobs/99");
      check_status "non-numeric id" 404 (get svc "/jobs/latest");
      let h = json_of (get svc "/healthz") in
      Alcotest.check Alcotest.bool "healthz ok" true
        (member "status" h = Obs.Json.String "ok");
      Alcotest.check Alcotest.bool "healthz queue depth" true
        (member "queue_depth" h = Obs.Json.Int 0))

let test_bad_specs () =
  let dir = tmp () in
  with_service (config ~dir ~max_budget:1_000 ()) (fun svc ->
      List.iter
        (fun (what, body) -> check_status what 400 (submit svc body))
        [
          ("garbage", "such json");
          ("unknown kind", {|{"problem":"sudoku","budget":10}|});
          ( "unknown gfun",
            {|{"problem":"tsp","cities":10,"budget":10,"gfun":"Magic"}|} );
          ("budget over cap", tsp_spec ~budget:2_000 ());
          ( "chaos on a race",
            tsp_spec ~budget:100
              ~extra:{|,"mode":"race","chaos":{"fault":"nan"}|} () );
          ( "unknown chaos fault",
            tsp_spec ~budget:100 ~extra:{|,"chaos":{"fault":"gremlins"}|} () );
          ("cities out of range", {|{"problem":"tsp","cities":2,"budget":10}|});
        ])

(* ----------------------------- cancel ---------------------------- *)

let test_delete_queued () =
  let dir = tmp () in
  with_service (config ~dir ()) (fun svc ->
      check_status "submit" 202 (submit svc (tsp_spec ()));
      let resp = Service.handle svc (req "DELETE" "/jobs/1") ~body:"" in
      check_status "cancel queued" 200 resp;
      Alcotest.check Alcotest.string "terminal state" "cancelled"
        (job_status svc 1);
      (* The cancellation is durable: the manifest on disk agrees. *)
      (match Store.read_manifest ~dir 1 with
      | Ok m ->
          Alcotest.check Alcotest.bool "manifest cancelled" true
            (Obs.Json.member "status" m = Some (Obs.Json.String "cancelled"))
      | Error e -> Alcotest.failf "manifest: %s" e);
      (* Cancelling again is a no-op report, not an error. *)
      check_status "cancel twice" 200
        (Service.handle svc (req "DELETE" "/jobs/1") ~body:"");
      check_status "cancel missing job" 404
        (Service.handle svc (req "DELETE" "/jobs/7") ~body:""))

let test_delete_running () =
  let dir = tmp () in
  with_service (config ~dir ~runners:1 ()) (fun svc ->
      check_status "submit" 202 (submit svc (tsp_spec ~budget:5_000_000 ()));
      await "job 1 running" (fun () -> job_status svc 1 = "running");
      let resp = Service.handle svc (req "DELETE" "/jobs/1") ~body:"" in
      check_status "cancel running" 202 resp;
      Alcotest.check Alcotest.bool "answer says cancelling" true
        (member "status" (json_of resp) = Obs.Json.String "cancelling");
      await "job 1 cancelled" (fun () -> job_status svc 1 = "cancelled");
      (* Cancelled work has no future: its snapshots are reaped. *)
      Alcotest.check Alcotest.bool "snapshots reaped" true
        (Store.snapshots ~dir 1 = []))

(* ------------------------ snapshot janitor ----------------------- *)

let test_sweep_stale () =
  let dir = tmp () in
  let write name =
    Checkpoint.write ~path:(Filename.concat dir name) Obs.Json.Null
  in
  (* Two jobs' worth of cadence snapshots, plus files the janitor must
     never touch: a manifest, a temp file, a foreign name. *)
  List.iter write
    [
      "job-000001-000010.ckpt";
      "job-000001-000020.ckpt";
      "job-000001-000030.ckpt";
      "job-000001-000040.ckpt";
      "job-000002-000005.ckpt";
      "job-000001.manifest";
      "notes.ckpt.tmp";
    ];
  Out_channel.with_open_bin (Filename.concat dir "job-000001-junk.ckpt")
    (fun oc -> Out_channel.output_string oc "not a sequence");
  let deleted = Checkpoint.sweep_stale ~dir ~keep:2 in
  Alcotest.check (Alcotest.list Alcotest.string) "oldest beyond keep go"
    [
      Filename.concat dir "job-000001-000010.ckpt";
      Filename.concat dir "job-000001-000020.ckpt";
    ]
    deleted;
  let survives name = Sys.file_exists (Filename.concat dir name) in
  List.iter
    (fun name ->
      Alcotest.check Alcotest.bool (name ^ " survives") true (survives name))
    [
      "job-000001-000030.ckpt";
      "job-000001-000040.ckpt";
      "job-000002-000005.ckpt";
      "job-000001.manifest";
      "notes.ckpt.tmp";
      "job-000001-junk.ckpt";
    ];
  Alcotest.check Alcotest.bool "missing dir is empty, not an error" true
    (Checkpoint.sweep_stale ~dir:(Filename.concat dir "absent") ~keep:1 = []);
  Alcotest.check Alcotest.bool "keep < 1 rejected" true
    (match Checkpoint.sweep_stale ~dir ~keep:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ----------------------- drain and durability -------------------- *)

(* The uninterrupted reference result for the standard durability
   spec, computed once and shared by every test that asserts
   bit-identical resume. *)
let durability_spec = tsp_spec ~budget:2_000_000 ~seed:11 ()

let reference_result =
  lazy
    (let dir = tmp () in
     with_service (config ~dir ~runners:1 ()) (fun svc ->
         check_status "reference submit" 202 (submit svc durability_spec);
         await_done svc 1;
         match Service.find_result svc 1 with
         | Some j -> Obs.Json.to_string j
         | None -> Alcotest.fail "reference job has no result"))

(* Boot a service over [dir], run the durability spec until [n]
   snapshots exist, drain mid-walk, and return with the job
   interrupted on disk. *)
let interrupt_after_snapshots ~dir n =
  let cfg = config ~dir ~runners:1 () in
  let svc = Service.create cfg in
  check_status "submit" 202 (submit svc durability_spec);
  await "snapshots" (fun () -> List.length (Store.snapshots ~dir 1) >= n);
  Service.drain svc;
  svc

let resume_and_check ~dir ~reference =
  with_service (config ~dir ~runners:1 ()) (fun svc ->
      await_done svc 1;
      (match Service.find_result svc 1 with
      | Some j ->
          Alcotest.check Alcotest.string "bit-identical to uninterrupted run"
            reference (Obs.Json.to_string j)
      | None -> Alcotest.fail "resumed job has no result");
      let _, _, _, _, resumed = Service.counters svc in
      Alcotest.check Alcotest.bool "resume counted" true (resumed >= 1);
      json_of (get svc "/healthz"))

let test_drain_resumes_bit_identically () =
  let reference = Lazy.force reference_result in
  let dir = tmp () in
  let svc = interrupt_after_snapshots ~dir 1 in
  (* Draining refuses new work with 503, and says so in healthz. *)
  check_status "submit during drain" 503 (submit svc durability_spec);
  Alcotest.check Alcotest.bool "draining flag" true (Service.draining svc);
  Alcotest.check Alcotest.bool "healthz says draining" true
    (member "status" (json_of (get svc "/healthz"))
    = Obs.Json.String "draining");
  Alcotest.check Alcotest.string "interrupted, not lost" "interrupted"
    (job_status svc 1);
  Alcotest.check Alcotest.bool "snapshots on disk" true
    (Store.snapshots ~dir 1 <> []);
  ignore (resume_and_check ~dir ~reference)

let corrupt_file path =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "{\"schema\":\"garbage\"")

let test_corrupt_snapshot_falls_back () =
  let reference = Lazy.force reference_result in
  let dir = tmp () in
  ignore (interrupt_after_snapshots ~dir 2);
  (* Torch the newest snapshot: resume must classify it corrupt and
     fall back to the older one, still bit-identically. *)
  (match Store.snapshots ~dir 1 with
  | newest :: _ -> corrupt_file newest
  | [] -> Alcotest.fail "no snapshots to corrupt");
  let health = resume_and_check ~dir ~reference in
  match member "corrupt_snapshots" health with
  | Obs.Json.Int n -> Alcotest.check Alcotest.bool "corruption counted" true (n >= 1)
  | _ -> Alcotest.fail "corrupt_snapshots is not an int"

let test_stale_snapshot_classified () =
  let reference = Lazy.force reference_result in
  let dir = tmp () in
  ignore (interrupt_after_snapshots ~dir 2);
  (* Overwrite the newest snapshot with a valid checkpoint from a
     different run configuration: CRC-clean but fingerprint-mismatched,
     so resume must classify it stale (not corrupt) and fall back. *)
  let foreign_dir = tmp () in
  (let svc = Service.create (config ~dir:foreign_dir ~runners:1 ()) in
   check_status "foreign submit" 202
     (submit svc (tsp_spec ~budget:2_000_000 ~seed:99 ()));
   await "foreign snapshot" (fun () -> Store.snapshots ~dir:foreign_dir 1 <> []);
   Service.drain svc);
  (match (Store.snapshots ~dir 1, Store.snapshots ~dir:foreign_dir 1) with
  | newest :: _, foreign :: _ ->
      let payload = In_channel.with_open_bin foreign In_channel.input_all in
      Out_channel.with_open_bin newest (fun oc ->
          Out_channel.output_string oc payload)
  | _ -> Alcotest.fail "missing snapshots");
  let health = resume_and_check ~dir ~reference in
  match member "stale_snapshots" health with
  | Obs.Json.Int n -> Alcotest.check Alcotest.bool "staleness counted" true (n >= 1)
  | _ -> Alcotest.fail "stale_snapshots is not an int"

let test_events_stream_terminal () =
  let dir = tmp () in
  with_service (config ~dir ~runners:1 ()) (fun svc ->
      check_status "submit" 202 (submit svc (tsp_spec ()));
      await_done svc 1;
      let body = body_of (get svc "/jobs/1/events") in
      let lines =
        String.split_on_char '\n' body |> List.filter (fun l -> l <> "")
      in
      Alcotest.check Alcotest.bool "stream has lines" true
        (List.length lines >= 3);
      List.iter
        (fun line ->
          match Obs.Json.parse line with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "event line not JSON (%s): %s" e line)
        lines)

(* ------------------------------ chaos ---------------------------- *)

let chaos_spec ~fault ~attempts =
  tsp_spec ~budget:50_000
    ~extra:
      (Printf.sprintf {|,"chaos":{"fault":%S,"attempts":%d}|} fault attempts)
    ()

let test_chaos_transient_recovers () =
  (* Every injectable fault, one sabotaged attempt each: the
     supervisor must retry, resume from the pre-fault checkpoint, and
     finish the job. *)
  let dir = tmp () in
  with_service (config ~dir ~runners:2 ()) (fun svc ->
      let faults = [ "nan"; "inf"; "raise-cost"; "raise-apply"; "raise-revert" ] in
      List.iteri
        (fun i fault ->
          check_status ("submit " ^ fault) 202
            (submit svc (chaos_spec ~fault ~attempts:1));
          let id = i + 1 in
          await_done svc id;
          let job = json_of (get svc (Printf.sprintf "/jobs/%d" id)) in
          match member "attempts" job with
          | Obs.Json.Int n ->
              Alcotest.check Alcotest.bool (fault ^ " retried") true (n >= 2)
          | _ -> Alcotest.fail "attempts is not an int")
        faults)

let test_chaos_persistent_quarantines () =
  let dir = tmp () in
  with_service (config ~dir ~runners:1 ~max_attempts:2 ()) (fun svc ->
      check_status "submit" 202
        (submit svc (chaos_spec ~fault:"raise-cost" ~attempts:100));
      await "job 1 failed" (fun () -> job_status svc 1 = "failed");
      let job = json_of (get svc "/jobs/1") in
      match member "error" job with
      | Obs.Json.String e ->
          Alcotest.check Alcotest.bool "error surfaced" true
            (String.length e > 0)
      | _ -> Alcotest.fail "failed job has no error string")

let suite =
  [
    case "quota buckets refill on the injected clock" test_quota_bucket;
    case "quota bucket table is bounded against name cycling"
      test_quota_bounded_buckets;
    case "over-quota submits get 429 + Retry-After" test_submit_over_quota;
    case "full queue gets 503 with the depth" test_queue_full;
    case "routing: 404s, and 405s carry Allow" test_routing;
    case "malformed specs are admission-time 400s" test_bad_specs;
    case "DELETE cancels a queued job durably" test_delete_queued;
    case "DELETE stops a running job at a checkpoint" test_delete_running;
    case "sweep_stale prunes by sequence, spares foreigners"
      test_sweep_stale;
    case "drain interrupts, 503s, and resumes bit-identically"
      test_drain_resumes_bit_identically;
    case "corrupt newest snapshot falls back to the older"
      test_corrupt_snapshot_falls_back;
    case "stale snapshot is classified, not resumed"
      test_stale_snapshot_classified;
    case "terminal event stream is complete JSONL" test_events_stream_terminal;
    case "chaos: every transient fault retries to done"
      test_chaos_transient_recovers;
    case "chaos: persistent fault quarantines as failed"
      test_chaos_persistent_quarantines;
  ]
