(* The observability layer: JSON round-trips, the event taxonomy, the
   trajectory recorder's compaction invariants, histograms, metrics,
   sinks, and — most importantly — that instrumented engine runs emit
   event streams whose counts reconcile exactly with the returned
   statistics. *)

let case name f = Alcotest.test_case name `Quick f

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Same tiny walker the engine tests use. *)
module Line = struct
  type state = { mutable x : int; cost_fn : int -> float }
  type move = int

  let cost s = s.cost_fn s.x
  let random_move rng _ = if Rng.bool rng then 1 else -1
  let apply s m = s.x <- s.x + m
  let revert s m = s.x <- s.x - m
  let copy s = { s with x = s.x }
  let moves _ = List.to_seq [ -1; 1 ]
end

module F1 = Figure1.Make (Line)
module F2 = Figure2.Make (Line)
module RL = Rejectionless.Make (Line)

let vee x = float_of_int (abs x)

(* ------------------------------- Json ---------------------------- *)

let test_json_roundtrip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("null", Null);
          ("true", Bool true);
          ("ints", List [ Int 0; Int (-3); Int max_int ]);
          ("floats", List [ Float 0.1; Float (-1e-300); Float 12345.0 ]);
          ("str", String "line1\nline2 \"quoted\" \\ tab\t end");
          ("empty_list", List []);
          ("empty_obj", Obj []);
        ])
  in
  match Obs.Json.parse (Obs.Json.to_string v) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok v' ->
      Alcotest.check Alcotest.bool "value survives print/parse" true (v = v')

let test_json_float_fidelity () =
  List.iter
    (fun f ->
      let s = Obs.Json.to_string (Obs.Json.Float f) in
      match Obs.Json.parse s with
      | Ok (Obs.Json.Float f') ->
          Alcotest.check (Alcotest.float 0.) (Printf.sprintf "%h survives" f) f f'
      | Ok (Obs.Json.Int i) ->
          Alcotest.check (Alcotest.float 0.) (Printf.sprintf "%h survives as int" f)
            f (float_of_int i)
      | Ok _ -> Alcotest.failf "%s parsed to a non-number" s
      | Error msg -> Alcotest.failf "%s failed to parse: %s" s msg)
    [ 0.; 1.5; -2.25; Float.pi; 1. /. 3.; 1e22; 5e-324; 1.0000000000000002 ]

let test_json_nonfinite_is_null () =
  Alcotest.check Alcotest.string "nan -> null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.check Alcotest.string "inf -> null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

(* ------------------------------ Event ---------------------------- *)

let all_events =
  Obs.Event.
    [
      Run_start { cost = 119. };
      Proposed { evaluation = 1; cost = 124.; kind = None };
      Proposed { evaluation = 2; cost = 118.; kind = Some "2opt" };
      Accepted { kind = Improving; cost = 117.; delta = -2. };
      Accepted { kind = Lateral; cost = 117.; delta = 0. };
      Accepted { kind = Uphill; cost = 120.; delta = 3. };
      Rejected { delta = 5. };
      New_best { evaluation = 42; cost = 107. };
      Temp_advance { temp = 3; y = 0.81 };
      Descent_done { cost = 110.; evaluations = 999 };
      Span { name = "temp:3"; seconds = 0.125 };
      Run_end { evaluations = 20000; final_cost = 110.; best_cost = 107.; seconds = 0.5 };
      Checkpoint_written { path = "ckpt.json"; evaluation = 1000 };
      Retry { label = "run-3"; attempt = 2; delay = 0.25; reason = "Fault injected" };
      Quarantined { label = "run-3"; attempts = 4; reason = "deadline exceeded" };
      Rung_standing
        { rung = 2; label = "tsp-128#3"; best_cost = 107.5; evaluations = 4000; culled = true };
    ]

let test_event_roundtrip () =
  List.iter
    (fun ev ->
      match Obs.Event.of_json (Obs.Event.to_json ev) with
      | Ok ev' -> Alcotest.check Alcotest.bool "event survives" true (ev = ev')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    all_events

let test_event_bad_json () =
  List.iter
    (fun s ->
      let json = Result.get_ok (Obs.Json.parse s) in
      match Obs.Event.of_json json with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should not decode" s)
    [
      {|{"ev":"wat"}|};
      {|{"cost":1.0}|};
      {|{"ev":"proposed","n":1}|};
      {|{"ev":"accepted","kind":"sideways","cost":1.0,"delta":0.0}|};
    ]

(* ------------------------- Trajectory (Recorder) ------------------ *)

(* The compaction invariants the ISSUE names: indices strictly
   increasing, len <= capacity, minimum exact. *)
let prop_trajectory_invariants =
  QCheck.Test.make ~name:"qcheck: Trajectory compaction invariants"
    QCheck.(pair (int_range 2 40) (int_range 0 5000))
    (fun (capacity, n) ->
      let t = Obs.Trajectory.create capacity in
      let true_min = ref infinity in
      let st = ref 12345 in
      for i = 0 to n - 1 do
        (* Cheap deterministic pseudo-random walk of costs. *)
        st := (!st * 1103515245) + 12345 + i;
        let c = float_of_int (abs (!st mod 1000)) in
        if c < !true_min then true_min := c;
        Obs.Trajectory.record t c
      done;
      let series = Obs.Trajectory.series t in
      let increasing = ref true in
      Array.iteri
        (fun i (idx, _) ->
          if i > 0 then begin
            let prev, _ = series.(i - 1) in
            if idx <= prev then increasing := false
          end)
        series;
      !increasing
      && Array.length series <= capacity
      && Obs.Trajectory.count t = n
      && (n = 0 || Obs.Trajectory.minimum t = !true_min))

let test_recorder_is_trajectory () =
  (* Traced.Recorder is the same module; the type equation compiles and
     values flow both ways. *)
  let t : Traced.Recorder.t = Obs.Trajectory.create 4 in
  Obs.Trajectory.record t 3.;
  Traced.Recorder.record t 1.;
  Alcotest.check Alcotest.int "both records counted" 2 (Traced.Recorder.count t);
  Alcotest.check (Alcotest.float 0.) "minimum shared" 1. (Obs.Trajectory.minimum t)

let test_trajectory_observer_records () =
  let t = Obs.Trajectory.create 16 in
  let o = Obs.Trajectory.observer t in
  Obs.Observer.emit o (Obs.Event.Run_start { cost = 9. });
  Obs.Observer.emit o (Obs.Event.Proposed { evaluation = 1; cost = 5.; kind = None });
  Obs.Observer.emit o (Obs.Event.Rejected { delta = 1. });
  Obs.Observer.emit o (Obs.Event.Proposed { evaluation = 2; cost = 7.; kind = None });
  Alcotest.check Alcotest.int "initial + 2 proposals" 3 (Obs.Trajectory.count t);
  Alcotest.check (Alcotest.float 0.) "minimum" 5. (Obs.Trajectory.minimum t)

(* ------------------------------ Log_hist -------------------------- *)

let test_log_hist_boundaries () =
  (* Base 2: bucket i covers [2^i, 2^{i+1}). *)
  List.iter
    (fun (v, want) ->
      Alcotest.check Alcotest.int
        (Printf.sprintf "bucket of %g" v)
        want
        (Obs.Log_hist.bucket_index ~base:2. v))
    [
      (1., 0); (1.5, 0); (1.999, 0); (2., 1); (3.999, 1); (4., 2); (0.5, -1);
      (0.25, -2); (0.75, -1); (1024., 10); (1023.999, 9);
    ];
  let h = Obs.Log_hist.create () in
  List.iter (Obs.Log_hist.add h) [ 1.; 1.5; 2.; 3.; 4.; 0.5; -1.; 0.; Float.nan ];
  Alcotest.check Alcotest.int "six bucketed" 6 (Obs.Log_hist.count h);
  Alcotest.check Alcotest.int "three underflow" 3 (Obs.Log_hist.underflow h);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "sparse buckets ascending"
    [ (-1, 1); (0, 2); (1, 2); (2, 1) ]
    (Obs.Log_hist.buckets h);
  let lo, hi = Obs.Log_hist.bounds h 1 in
  Alcotest.check (Alcotest.float 0.) "lo" 2. lo;
  Alcotest.check (Alcotest.float 0.) "hi" 4. hi

let test_log_hist_merge () =
  let a = Obs.Log_hist.create () and b = Obs.Log_hist.create () in
  let xs = [ 1.; 3.; 9. ] and ys = [ 2.; 3.; 100.; -1. ] in
  List.iter (Obs.Log_hist.add a) xs;
  List.iter (Obs.Log_hist.add b) ys;
  let m = Obs.Log_hist.merge a b in
  Alcotest.check Alcotest.int "counts add" 6 (Obs.Log_hist.count m);
  Alcotest.check Alcotest.int "underflows add" 1 (Obs.Log_hist.underflow m);
  let direct = Obs.Log_hist.create () in
  List.iter (Obs.Log_hist.add direct) (xs @ List.filter (fun v -> v > 0.) ys);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "buckets match a direct tally"
    (Obs.Log_hist.buckets direct) (Obs.Log_hist.buckets m);
  Alcotest.check (Alcotest.float 1e-9) "merged mean" (Obs.Log_hist.mean direct)
    (Obs.Log_hist.mean m);
  Alcotest.check (Alcotest.float 1e-9) "merged stddev" (Obs.Log_hist.stddev direct)
    (Obs.Log_hist.stddev m);
  (* Merging must not disturb the inputs. *)
  Alcotest.check Alcotest.int "a untouched" 3 (Obs.Log_hist.count a);
  Alcotest.check Alcotest.bool "base mismatch rejected" true
    (try
       ignore (Obs.Log_hist.merge a (Obs.Log_hist.create ~base:10. ()));
       false
     with Invalid_argument _ -> true)

let test_online_merge () =
  let xs = [ 1.; 2.; 5.5; -3.; 8. ] and ys = [ 0.5; 10.; -2. ] in
  let a = Stats.Online.create () and b = Stats.Online.create () in
  List.iter (Stats.Online.add a) xs;
  List.iter (Stats.Online.add b) ys;
  let m = Stats.Online.merge a b in
  let direct = Stats.Online.create () in
  List.iter (Stats.Online.add direct) (xs @ ys);
  Alcotest.check Alcotest.int "count" (Stats.Online.count direct) (Stats.Online.count m);
  Alcotest.check (Alcotest.float 1e-9) "mean" (Stats.Online.mean direct)
    (Stats.Online.mean m);
  Alcotest.check (Alcotest.float 1e-9) "variance" (Stats.Online.variance direct)
    (Stats.Online.variance m);
  Alcotest.check (Alcotest.float 0.) "min" (Stats.Online.min direct) (Stats.Online.min m);
  Alcotest.check (Alcotest.float 0.) "max" (Stats.Online.max direct) (Stats.Online.max m);
  (* Merging with an empty side is the identity. *)
  let empty = Stats.Online.create () in
  let m2 = Stats.Online.merge a empty in
  Alcotest.check (Alcotest.float 1e-12) "merge with empty keeps mean"
    (Stats.Online.mean a) (Stats.Online.mean m2)

(* ------------------------------- Ring ----------------------------- *)

let test_ring () =
  let r = Obs.Ring.create 3 in
  let o = Obs.Ring.observer r in
  for i = 1 to 5 do
    Obs.Observer.emit o
      (Obs.Event.Proposed { evaluation = i; cost = float_of_int i; kind = None })
  done;
  Alcotest.check Alcotest.int "seen all" 5 (Obs.Ring.seen r);
  Alcotest.check Alcotest.int "keeps capacity" 3 (Obs.Ring.length r);
  let kept =
    List.map
      (function Obs.Event.Proposed { evaluation; _ } -> evaluation | _ -> -1)
      (Obs.Ring.to_list r)
  in
  Alcotest.check (Alcotest.list Alcotest.int) "latest three, oldest first" [ 3; 4; 5 ] kept;
  Alcotest.check Alcotest.bool "zero capacity rejected" true
    (try
       ignore (Obs.Ring.create 0);
       false
     with Invalid_argument _ -> true)

(* ---------------------------- Observer ---------------------------- *)

let test_observer_tee_and_null () =
  Alcotest.check Alcotest.bool "null disabled" false (Obs.Observer.enabled Obs.null);
  Alcotest.check Alcotest.bool "tee of nulls collapses" false
    (Obs.Observer.enabled (Obs.Observer.tee [ Obs.null; Obs.null ]));
  let a = Obs.Ring.create 8 and b = Obs.Ring.create 8 in
  let t = Obs.Observer.tee [ Obs.Ring.observer a; Obs.null; Obs.Ring.observer b ] in
  Obs.Observer.emit t (Obs.Event.Run_start { cost = 1. });
  Obs.Observer.emit t (Obs.Event.Rejected { delta = 1. });
  Alcotest.check Alcotest.int "a sees both" 2 (Obs.Ring.seen a);
  Alcotest.check Alcotest.int "b sees both" 2 (Obs.Ring.seen b)

(* --------------------------- Downsample --------------------------- *)

let test_downsample () =
  let r = Obs.Ring.create 100_000 in
  let o = Obs.Downsample.observer ~capacity:8 (Obs.Ring.observer r) in
  let n = 10_000 in
  for i = 1 to n do
    Obs.Observer.emit o
      (Obs.Event.Proposed { evaluation = i; cost = float_of_int i; kind = None })
  done;
  Obs.Observer.emit o (Obs.Event.Run_end
                         { evaluations = n; final_cost = 0.; best_cost = 0.; seconds = 0. });
  let events = Obs.Ring.to_list r in
  let proposed =
    List.length
      (List.filter (function Obs.Event.Proposed _ -> true | _ -> false) events)
  in
  (* Stride doubling: at most capacity forwards per stride level, and
     log2(10000) < 14 levels. *)
  Alcotest.check Alcotest.bool
    (Printf.sprintf "thinned (%d forwarded)" proposed)
    true
    (proposed <= 8 * 14 && proposed >= 8);
  (match events with
  | Obs.Event.Proposed { evaluation = 1; _ } :: _ -> ()
  | _ -> Alcotest.fail "first proposal forwarded");
  (match List.rev events with
  | Obs.Event.Run_end _ :: _ -> ()
  | _ -> Alcotest.fail "non-proposal passed through")

(* ----------------------------- Metrics ---------------------------- *)

let test_metrics_registry () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "a";
  Obs.Metrics.incr ~by:4 m "a";
  Obs.Metrics.set_gauge m "g" 2.5;
  Obs.Metrics.observe m "h" 3.;
  Alcotest.check Alcotest.int "counter" 5 (Obs.Metrics.counter m "a");
  Alcotest.check Alcotest.int "unknown counter is 0" 0 (Obs.Metrics.counter m "nope");
  Alcotest.check (Alcotest.option (Alcotest.float 0.)) "gauge" (Some 2.5)
    (Obs.Metrics.gauge m "g");
  Alcotest.check Alcotest.bool "histogram exists" true
    (Obs.Metrics.histogram m "h" <> None);
  Alcotest.check (Alcotest.list Alcotest.string) "names sorted" [ "a"; "g"; "h" ]
    (Obs.Metrics.names m);
  Alcotest.check Alcotest.bool "kind clash rejected" true
    (try
       Obs.Metrics.incr m "g";
       false
     with Invalid_argument _ -> true)

let test_metrics_observer_standard_set () =
  let m = Obs.Metrics.create () in
  let o = Obs.Metrics.observer m in
  List.iter (Obs.Observer.emit o)
    Obs.Event.
      [
        Run_start { cost = 10. };
        Temp_advance { temp = 1; y = 1. };
        Proposed { evaluation = 1; cost = 9.; kind = None };
        Accepted { kind = Improving; cost = 9.; delta = -1. };
        New_best { evaluation = 1; cost = 9. };
        Proposed { evaluation = 2; cost = 12.; kind = Some "2opt" };
        Rejected { delta = 3. };
        Temp_advance { temp = 2; y = 0.9 };
        Proposed { evaluation = 3; cost = 11.; kind = None };
        Accepted { kind = Uphill; cost = 11.; delta = 2. };
        Span { name = "temp:2"; seconds = 0.25 };
        Run_end { evaluations = 3; final_cost = 11.; best_cost = 9.; seconds = 0.5 };
      ];
  Alcotest.check Alcotest.int "proposed" 3 (Obs.Metrics.counter m "proposed");
  Alcotest.check Alcotest.int "improving" 1 (Obs.Metrics.counter m "accepted.improving");
  Alcotest.check Alcotest.int "uphill" 1 (Obs.Metrics.counter m "accepted.uphill");
  Alcotest.check Alcotest.int "rejected" 1 (Obs.Metrics.counter m "rejected");
  Alcotest.check Alcotest.int "temp_advance" 2 (Obs.Metrics.counter m "temp_advance");
  Alcotest.check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int))
    "acceptance by temperature"
    [ (1, 1, 2); (2, 1, 1) ]
    (Obs.Metrics.acceptance_by_temp m);
  Alcotest.check (Alcotest.option (Alcotest.float 0.)) "best gauge" (Some 9.)
    (Obs.Metrics.gauge m "best_cost");
  Alcotest.check (Alcotest.option (Alcotest.float 0.)) "evals/sec" (Some 6.)
    (Obs.Metrics.gauge m "evals_per_sec");
  let h = Option.get (Obs.Metrics.histogram m "uphill_delta") in
  Alcotest.check Alcotest.int "one uphill delta observed" 1 (Obs.Log_hist.count h);
  (* to_json renders without raising and mentions every name. *)
  let s = Obs.Json.to_string (Obs.Metrics.to_json m) in
  Alcotest.check Alcotest.bool "json has proposed" true (contains s "proposed")

(* ------------------------------- Span ----------------------------- *)

let test_span () =
  let r = Obs.Ring.create 4 in
  let o = Obs.Ring.observer r in
  let v = Obs.Span.time o "phase" (fun () -> 42) in
  Alcotest.check Alcotest.int "value returned" 42 v;
  (match Obs.Ring.to_list r with
  | [ Obs.Event.Span { name = "phase"; seconds } ] ->
      Alcotest.check Alcotest.bool "non-negative duration" true (seconds >= 0.)
  | _ -> Alcotest.fail "expected exactly one span event");
  (* With the null observer nothing is measured or emitted. *)
  Alcotest.check Alcotest.int "null span" 1 (Obs.Span.time Obs.null "x" (fun () -> 1))

(* ----------------------- Engine reconciliation -------------------- *)

let stats_testable =
  Alcotest.testable
    (fun ppf s -> Mc_problem.pp_stats ppf s)
    (fun a b -> a = b)

(* Run an engine with a JSONL sink, re-read the file, and require the
   event stream to reproduce the returned statistics. *)
let roundtrip_stats run =
  let path = Filename.temp_file "sa_obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let result = Obs.Jsonl.with_file path (fun sink -> run sink) in
      match Obs.Jsonl.read_file path with
      | Error msg -> Alcotest.failf "re-read failed: %s" msg
      | Ok events -> (result, events))

let test_f1_jsonl_reconciles () =
  let r, events =
    roundtrip_stats (fun sink ->
        let s = { Line.x = 30; cost_fn = vee } in
        let p =
          F1.params ~gfun:Gfun.six_temp_annealing ~schedule:(Schedule.kirkpatrick ())
            ~budget:(Budget.Evaluations 2000) ()
        in
        F1.run ~observer:sink (Rng.create ~seed:101) p s)
  in
  Alcotest.check stats_testable "figure1 events = stats"
    r.Mc_problem.stats
    (Mc_problem.stats_of_events events);
  (* Exactly one run_start/run_end; spans close every temperature. *)
  let count pred = List.length (List.filter pred events) in
  Alcotest.check Alcotest.int "one run_start" 1
    (count (function Obs.Event.Run_start _ -> true | _ -> false));
  Alcotest.check Alcotest.int "one run_end" 1
    (count (function Obs.Event.Run_end _ -> true | _ -> false));
  (* One span per temperature epoch plus the enclosing "run" span. *)
  Alcotest.check Alcotest.int "spans = temperatures + run"
    (r.Mc_problem.stats.Mc_problem.temperatures_visited + 1)
    (count (function Obs.Event.Span _ -> true | _ -> false))

let test_f1_defer_jsonl_reconciles () =
  let r, events =
    roundtrip_stats (fun sink ->
        let s = { Line.x = 0; cost_fn = vee } in
        let p =
          F1.params ~defer_threshold:3 ~gfun:Gfun.g_one
            ~schedule:(Schedule.constant ~k:1 1.) ~budget:(Budget.Evaluations 500) ()
        in
        F1.run ~observer:sink (Rng.create ~seed:102) p s)
  in
  Alcotest.check stats_testable "deferred-uphill events = stats"
    r.Mc_problem.stats
    (Mc_problem.stats_of_events events)

let test_f2_jsonl_reconciles () =
  let r, events =
    roundtrip_stats (fun sink ->
        let s = { Line.x = 9; cost_fn = (fun x -> float_of_int (abs (abs x - 3))) } in
        let p =
          F2.params ~counter_limit:20 ~restart_schedule:false ~gfun:Gfun.metropolis
            ~schedule:(Schedule.of_array [| 2. |]) ~budget:(Budget.Evaluations 3000) ()
        in
        F2.run ~observer:sink (Rng.create ~seed:103) p s)
  in
  Alcotest.check stats_testable "figure2 events = stats"
    r.Mc_problem.stats
    (Mc_problem.stats_of_events events);
  Alcotest.check Alcotest.bool "descents happened" true
    (r.Mc_problem.stats.Mc_problem.descents > 0)

let test_rl_jsonl_reconciles () =
  let r, events =
    roundtrip_stats (fun sink ->
        let s = { Line.x = 6; cost_fn = vee } in
        let p =
          RL.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 1.5 |])
            ~budget:(Budget.Evaluations 800)
        in
        RL.run ~observer:sink (Rng.create ~seed:104) p s)
  in
  let derived = Mc_problem.stats_of_events events in
  (* The rejectionless engine's [rejected] stat is scan overhead with no
     event counterpart; everything else must match. *)
  Alcotest.check stats_testable "rejectionless events = stats (minus rejected)"
    { r.Mc_problem.stats with Mc_problem.rejected = 0 }
    derived

let test_multi_start_observed () =
  let module MS = Multi_start.Make (Line) in
  let ring = Obs.Ring.create 100_000 in
  let params =
    MS.Engine.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 1. |])
      ~budget:(Budget.Evaluations 100) ()
  in
  let outcome =
    MS.run ~observer:(Obs.Ring.observer ring) (Rng.create ~seed:7) ~chains:4 ~params
      ~make_state:(fun i -> { Line.x = 10 + i; cost_fn = vee })
  in
  let starts =
    List.length
      (List.filter
         (function Obs.Event.Run_start _ -> true | _ -> false)
         (Obs.Ring.to_list ring))
  in
  Alcotest.check Alcotest.int "one run_start per chain" 4 starts;
  Alcotest.check Alcotest.int "budgets add up" 400 outcome.MS.total_evaluations

(* -------------------- NOLA acceptance criterion ------------------- *)

let data_path name =
  List.find_opt Sys.file_exists
    [ "../data/" ^ name; "data/" ^ name; "../../data/" ^ name; "../../../data/" ^ name ]

let test_nola_metropolis_trace_reconciles () =
  match data_path "nola15.net" with
  | None -> () (* data directory not visible from the sandbox; skip *)
  | Some path -> (
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Netlist.of_string text with
      | Error msg -> Alcotest.failf "nola15.net: %s" msg
      | Ok nl ->
          let module E = Figure1.Make (Linarr_problem.Swap) in
          let rng = Rng.create ~seed:0 in
          let state = Arrangement.random rng nl in
          let p =
            E.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 1. |])
              ~budget:(Budget.Evaluations 5000) ()
          in
          let metrics = Obs.Metrics.create () in
          let r, events =
            roundtrip_stats (fun sink ->
                E.run
                  ~observer:(Obs.Observer.tee [ sink; Obs.Metrics.observer metrics ])
                  rng p state)
          in
          let stats = r.Mc_problem.stats in
          Alcotest.check stats_testable "NOLA trace reconciles" stats
            (Mc_problem.stats_of_events events);
          (* The ISSUE's reconciliation identities, spelled out. *)
          Alcotest.check Alcotest.int "evaluations = proposed"
            stats.Mc_problem.evaluations
            (Obs.Metrics.counter metrics "proposed");
          Alcotest.check Alcotest.int "accepted = improving + lateral + uphill"
            (stats.Mc_problem.improving + stats.Mc_problem.lateral_accepted
           + stats.Mc_problem.uphill_accepted)
            (Obs.Metrics.counter metrics "accepted.improving"
            + Obs.Metrics.counter metrics "accepted.lateral"
            + Obs.Metrics.counter metrics "accepted.uphill");
          Alcotest.check Alcotest.int "one temp_advance per temperature visited"
            stats.Mc_problem.temperatures_visited
            (Obs.Metrics.counter metrics "temp_advance"))

(* --------------------------- Mc_problem --------------------------- *)

let test_stats_printers () =
  let s =
    {
      Mc_problem.evaluations = 100;
      improving = 10;
      lateral_accepted = 20;
      uphill_accepted = 5;
      rejected = 65;
      temperatures_visited = 6;
      descents = 2;
    }
  in
  let text = Format.asprintf "%a" Mc_problem.pp_stats s in
  Alcotest.check Alcotest.bool "pp mentions evaluations" true
    (contains text "evaluations");
  let json = Mc_problem.stats_to_json s in
  Alcotest.check (Alcotest.option Alcotest.int) "evaluations field" (Some 100)
    (Option.bind (Obs.Json.member "evaluations" json) Obs.Json.to_int);
  Alcotest.check (Alcotest.option Alcotest.int) "descents field" (Some 2)
    (Option.bind (Obs.Json.member "descents" json) Obs.Json.to_int);
  (* stats_of_events on an empty stream is empty_stats. *)
  Alcotest.check stats_testable "empty stream" Mc_problem.empty_stats
    (Mc_problem.stats_of_events [])

let suite =
  [
    case "json: round-trip" test_json_roundtrip;
    case "json: float fidelity" test_json_float_fidelity;
    case "json: non-finite floats render null" test_json_nonfinite_is_null;
    case "json: malformed inputs rejected" test_json_parse_errors;
    case "event: json round-trip (all constructors)" test_event_roundtrip;
    case "event: malformed events rejected" test_event_bad_json;
    QCheck_alcotest.to_alcotest prop_trajectory_invariants;
    case "recorder: Traced.Recorder = Obs.Trajectory" test_recorder_is_trajectory;
    case "trajectory: observer records run_start + proposals"
      test_trajectory_observer_records;
    case "log_hist: bucket boundaries" test_log_hist_boundaries;
    case "log_hist: merge" test_log_hist_merge;
    case "stats: Online.merge" test_online_merge;
    case "ring: retention and order" test_ring;
    case "observer: tee and null" test_observer_tee_and_null;
    case "downsample: stride-doubling thinning" test_downsample;
    case "metrics: registry basics" test_metrics_registry;
    case "metrics: standard observer set" test_metrics_observer_standard_set;
    case "span: timing through an observer" test_span;
    case "figure1: jsonl trace reconciles with stats" test_f1_jsonl_reconciles;
    case "figure1: deferred-uphill trace reconciles" test_f1_defer_jsonl_reconciles;
    case "figure2: jsonl trace reconciles with stats" test_f2_jsonl_reconciles;
    case "rejectionless: jsonl trace reconciles" test_rl_jsonl_reconciles;
    case "multi_start: observer sees every chain" test_multi_start_observed;
    case "nola15: Metropolis trace reconciles (acceptance criterion)"
      test_nola_metropolis_trace_reconciles;
    case "mc_problem: stats printers" test_stats_printers;
  ]
