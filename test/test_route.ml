(* Single-row channel routing: the left-edge algorithm and the
   tracks-equals-density theorem. *)

let case name f = Alcotest.test_case name `Quick f

let path4 () =
  Netlist.create ~n_elements:4 ~pins:[| [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |] |]

let expect_ok arr layout =
  match Single_row.verify arr layout with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_path_single_track () =
  (* Chain order: the three nets are disjoint wires, one track does. *)
  let arr = Arrangement.create (path4 ()) in
  let layout = Single_row.assign arr in
  Alcotest.check Alcotest.int "one track" 1 layout.Single_row.track_count;
  expect_ok arr layout

let test_nested_nets () =
  (* Nets {0,3} and {1,2} at identity order: the outer wire covers the
     inner one, two tracks. *)
  let nl = Netlist.create ~n_elements:4 ~pins:[| [| 0; 3 |]; [| 1; 2 |] |] in
  let arr = Arrangement.create nl in
  let layout = Single_row.assign arr in
  Alcotest.check Alcotest.int "two tracks" 2 layout.Single_row.track_count;
  expect_ok arr layout

let test_abutting_nets_share_track () =
  (* Nets {0,1} and {1,3}: they share only element 1, i.e. abut at a
     position, not at a boundary - one track suffices. *)
  let nl = Netlist.create ~n_elements:4 ~pins:[| [| 0; 1 |]; [| 1; 3 |] |] in
  let arr = Arrangement.create nl in
  let layout = Single_row.assign arr in
  Alcotest.check Alcotest.int "one track" 1 layout.Single_row.track_count;
  expect_ok arr layout

let test_no_nets () =
  let nl = Netlist.create ~n_elements:3 ~pins:[||] in
  let arr = Arrangement.create nl in
  let layout = Single_row.assign arr in
  Alcotest.check Alcotest.int "zero tracks" 0 layout.Single_row.track_count;
  expect_ok arr layout

let test_tracks_equal_density () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 20 do
    let nl =
      Netlist.random_nola (Rng.split rng) ~elements:12 ~nets:30 ~min_pins:2 ~max_pins:5
    in
    let arr = Arrangement.random (Rng.split rng) nl in
    let layout = Single_row.assign arr in
    Alcotest.check Alcotest.int "left-edge is optimal: tracks = density"
      (Arrangement.density arr) layout.Single_row.track_count;
    expect_ok arr layout
  done

let test_verify_catches_overlap () =
  let nl = Netlist.create ~n_elements:4 ~pins:[| [| 0; 3 |]; [| 1; 2 |] |] in
  let arr = Arrangement.create nl in
  let bogus = { Single_row.track_of = [| 0; 0 |]; track_count = 1 } in
  match Single_row.verify arr bogus with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overlapping layout accepted"

let test_verify_catches_bad_track () =
  let arr = Arrangement.create (path4 ()) in
  let bogus = { Single_row.track_of = [| 0; 5; 0 |]; track_count = 1 } in
  match Single_row.verify arr bogus with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range track accepted"

let test_verify_catches_size_mismatch () =
  let arr = Arrangement.create (path4 ()) in
  let bogus = { Single_row.track_of = [| 0 |]; track_count = 1 } in
  match Single_row.verify arr bogus with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong net count accepted"

let test_render_shape () =
  let arr = Arrangement.create (path4 ()) in
  let layout = Single_row.assign arr in
  let picture = Single_row.render arr layout in
  let lines = String.split_on_char '\n' picture in
  (* track rows + element label row + trailing newline *)
  Alcotest.check Alcotest.int "line count" (layout.Single_row.track_count + 2)
    (List.length lines);
  Alcotest.check Alcotest.bool "mentions track 0" true
    (String.length picture >= 8 && String.sub picture 0 8 = "track  0")

let prop_assignment_valid_and_optimal =
  QCheck.Test.make ~name:"qcheck: left-edge layouts verify and use density tracks"
    (QCheck.make
       QCheck.Gen.(
         int_range 2 12 >>= fun elements ->
         int_range 0 25 >>= fun nets ->
         int >|= fun seed -> (elements, nets, seed)))
    (fun (elements, nets, seed) ->
      let rng = Rng.create ~seed in
      let nl = Netlist.random_gola rng ~elements ~nets in
      let arr = Arrangement.random rng nl in
      let layout = Single_row.assign arr in
      Single_row.verify arr layout = Ok ()
      && layout.Single_row.track_count = Arrangement.density arr)

let suite =
  [
    case "path routes in one track" test_path_single_track;
    case "nested nets need two tracks" test_nested_nets;
    case "abutting nets share a track" test_abutting_nets_share_track;
    case "netless instance needs no tracks" test_no_nets;
    case "tracks = density (left-edge optimality)" test_tracks_equal_density;
    case "verify rejects overlaps" test_verify_catches_overlap;
    case "verify rejects bad track indices" test_verify_catches_bad_track;
    case "verify rejects size mismatches" test_verify_catches_size_mismatch;
    case "render shape" test_render_shape;
    QCheck_alcotest.to_alcotest prop_assignment_valid_and_optimal;
  ]
