let case name f = Alcotest.test_case name `Quick f
let checkf name expected actual = Alcotest.check (Alcotest.float 1e-9) name expected actual
let checkf_loose name expected actual = Alcotest.check (Alcotest.float 1e-6) name expected actual

let test_mean () =
  checkf "mean of 1..5" 3. (Stats.mean [| 1.; 2.; 3.; 4.; 5. |]);
  checkf "singleton" 7. (Stats.mean [| 7. |]);
  checkf "negative values" (-2.) (Stats.mean [| -1.; -3. |])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Stats.mean [||]))

let test_variance () =
  checkf_loose "variance of 1..5" 2.5 (Stats.variance [| 1.; 2.; 3.; 4.; 5. |]);
  checkf "constant sample" 0. (Stats.variance [| 4.; 4.; 4. |]);
  checkf "singleton" 0. (Stats.variance [| 42. |])

let test_stddev () = checkf_loose "stddev" (sqrt 2.5) (Stats.stddev [| 1.; 2.; 3.; 4.; 5. |])

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 2. |] in
  checkf "min" (-1.) lo;
  checkf "max" 7. hi

let test_median_odd () = checkf "odd median" 3. (Stats.median [| 5.; 1.; 3. |])
let test_median_even () = checkf "even median" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |])

let test_median_does_not_mutate () =
  let a = [| 3.; 1.; 2. |] in
  ignore (Stats.median a);
  Alcotest.check (Alcotest.array (Alcotest.float 0.)) "unchanged" [| 3.; 1.; 2. |] a

let test_quantile () =
  let a = [| 10.; 20.; 30.; 40. |] in
  checkf "q0 = min" 10. (Stats.quantile a 0.);
  checkf "q1 = max" 40. (Stats.quantile a 1.);
  checkf "q interpolates" 25. (Stats.quantile a 0.5);
  Alcotest.check_raises "q out of range" (Invalid_argument "Stats.quantile: q outside [0,1]")
    (fun () -> ignore (Stats.quantile a 1.5))

let test_total_kahan () =
  (* Sum many small values onto a large one: naive summation drifts. *)
  let a = Array.make 10_001 1e-8 in
  a.(0) <- 1e8;
  let expected = 1e8 +. (1e-8 *. 10_000.) in
  Alcotest.check (Alcotest.float 1e-7) "compensated" expected (Stats.total a)

let test_mean_ci95 () =
  let m, hw = Stats.mean_ci95 [| 2.; 4.; 6.; 8. |] in
  checkf "mean" 5. m;
  Alcotest.check Alcotest.bool "positive halfwidth" true (hw > 0.);
  let _, hw1 = Stats.mean_ci95 [| 3. |] in
  checkf "singleton halfwidth" 0. hw1

let test_online_matches_batch () =
  let data = [| 2.; -1.; 4.; 4.; 0.5; 9. |] in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) data;
  Alcotest.check Alcotest.int "count" 6 (Stats.Online.count o);
  checkf_loose "online mean" (Stats.mean data) (Stats.Online.mean o);
  checkf_loose "online variance" (Stats.variance data) (Stats.Online.variance o);
  checkf "online min" (-1.) (Stats.Online.min o);
  checkf "online max" 9. (Stats.Online.max o)

let test_online_empty () =
  let o = Stats.Online.create () in
  checkf "empty mean 0" 0. (Stats.Online.mean o);
  checkf "empty variance 0" 0. (Stats.Online.variance o);
  Alcotest.check_raises "empty min" (Invalid_argument "Stats.Online.min: empty") (fun () ->
      ignore (Stats.Online.min o))

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.; 3.; 9.9; -5.; 15. ];
  let counts = Stats.Histogram.counts h in
  Alcotest.check Alcotest.int "total" 6 (Stats.Histogram.total h);
  Alcotest.check Alcotest.int "first bin gets clamped low" 3 counts.(0);
  Alcotest.check Alcotest.int "last bin gets clamped high" 2 counts.(4);
  Alcotest.check Alcotest.int "middle bin" 1 counts.(1)

let test_histogram_invalid () =
  Alcotest.check_raises "bins 0" (Invalid_argument "Stats.Histogram.create: bins <= 0")
    (fun () -> ignore (Stats.Histogram.create ~lo:0. ~hi:1. ~bins:0));
  Alcotest.check_raises "lo >= hi" (Invalid_argument "Stats.Histogram.create: lo >= hi")
    (fun () -> ignore (Stats.Histogram.create ~lo:1. ~hi:1. ~bins:3))

let test_linear_regression () =
  let slope, intercept = Stats.linear_regression [| (0., 1.); (1., 3.); (2., 5.) |] in
  checkf_loose "slope" 2. slope;
  checkf_loose "intercept" 1. intercept

let test_linear_regression_invalid () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Stats.linear_regression: need >= 2 points") (fun () ->
      ignore (Stats.linear_regression [| (1., 1.) |]));
  Alcotest.check_raises "zero x variance"
    (Invalid_argument "Stats.linear_regression: zero x variance") (fun () ->
      ignore (Stats.linear_regression [| (1., 1.); (1., 2.) |]))

let test_pearson () =
  checkf_loose "perfect correlation" 1. (Stats.pearson [| 1.; 2.; 3. |] [| 10.; 20.; 30. |]);
  checkf_loose "perfect anticorrelation" (-1.) (Stats.pearson [| 1.; 2.; 3. |] [| 3.; 2.; 1. |]);
  Alcotest.check Alcotest.bool "uncorrelated near 0" true
    (Float.abs (Stats.pearson [| 1.; 2.; 3.; 4. |] [| 1.; -1.; 1.; -1. |]) < 0.5)

let test_pearson_invalid () =
  (match Stats.pearson [| 1. |] [| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "singleton accepted");
  (match Stats.pearson [| 1.; 2. |] [| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted");
  match Stats.pearson [| 1.; 1. |] [| 1.; 2. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero variance accepted"

let test_ranks () =
  Alcotest.check (Alcotest.array (Alcotest.float 1e-9)) "simple" [| 2.; 1.; 3. |]
    (Stats.ranks [| 5.; 1.; 9. |]);
  Alcotest.check (Alcotest.array (Alcotest.float 1e-9)) "ties averaged"
    [| 1.5; 1.5; 3. |]
    (Stats.ranks [| 4.; 4.; 7. |])

let test_spearman () =
  (* monotone but nonlinear: Spearman 1, Pearson < 1 *)
  let xs = [| 1.; 2.; 3.; 4. |] and ys = [| 1.; 8.; 27.; 64. |] in
  checkf_loose "monotone gives 1" 1. (Stats.spearman xs ys);
  Alcotest.check Alcotest.bool "pearson below spearman here" true
    (Stats.pearson xs ys < 1.);
  checkf_loose "reversal gives -1" (-1.) (Stats.spearman xs [| 9.; 7.; 4.; 2. |])

let prop_online_mean_matches =
  QCheck.Test.make ~name:"qcheck: online mean = batch mean"
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-1000.) 1000.))
    (fun data ->
      let o = Stats.Online.create () in
      Array.iter (Stats.Online.add o) data;
      Float.abs (Stats.Online.mean o -. Stats.mean data) < 1e-6)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"qcheck: quantile is monotone in q"
    QCheck.(array_of_size Gen.(int_range 2 30) (float_range (-100.) 100.))
    (fun data -> Stats.quantile data 0.25 <= Stats.quantile data 0.75 +. 1e-9)

let suite =
  [
    case "mean" test_mean;
    case "mean empty" test_mean_empty;
    case "variance" test_variance;
    case "stddev" test_stddev;
    case "min_max" test_min_max;
    case "median odd" test_median_odd;
    case "median even" test_median_even;
    case "median does not mutate" test_median_does_not_mutate;
    case "quantile endpoints and interpolation" test_quantile;
    case "Kahan-compensated total" test_total_kahan;
    case "mean_ci95" test_mean_ci95;
    case "online matches batch" test_online_matches_batch;
    case "online empty behaviour" test_online_empty;
    case "histogram binning and clamping" test_histogram;
    case "histogram invalid args" test_histogram_invalid;
    case "linear regression fit" test_linear_regression;
    case "linear regression invalid" test_linear_regression_invalid;
    case "pearson correlation" test_pearson;
    case "pearson invalid args" test_pearson_invalid;
    case "fractional ranks with ties" test_ranks;
    case "spearman rank correlation" test_spearman;
    QCheck_alcotest.to_alcotest prop_online_mean_matches;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
  ]
