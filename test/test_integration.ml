(* Cross-module scenarios: every substrate driven end to end through
   the engines, plus pipelines that chain subsystems the way the
   examples and the CLI do. *)

let case name f = Alcotest.test_case name `Quick f

module Relocate_f1 = Figure1.Make (Linarr_problem.Relocate)
module Tsp_f2 = Figure2.Make (Tsp_problem)
module Arr_rless = Rejectionless.Make (Linarr_problem.Swap)
module Arr_f1 = Figure1.Make (Linarr_problem.Swap)
module Part_f1 = Figure1.Make (Partition_problem)
module Place_f1 = Figure1.Make (Placement.Problem)
module Floor_f2 = Figure2.Make (Floorplan.Problem)
module Wire_f1 = Figure1.Make (Wiring.Problem)
module Tsp_tuner = Tuner.Make (Tsp_problem)

let test_relocate_engine () =
  let rng = Rng.create ~seed:1 in
  let nl = Netlist.random_nola rng ~elements:12 ~nets:60 ~min_pins:2 ~max_pins:4 in
  let arr = Arrangement.random rng nl in
  let initial = Arrangement.density arr in
  let p =
    Relocate_f1.params ~gfun:Gfun.g_one ~schedule:(Schedule.constant ~k:1 1.)
      ~budget:(Budget.Evaluations 2000) ()
  in
  let r = Relocate_f1.run rng p arr in
  Alcotest.check Alcotest.bool "single exchange reduces density" true
    (int_of_float r.Mc_problem.best_cost < initial);
  Arrangement.check arr;
  Arrangement.check r.Mc_problem.best

let test_figure2_on_tsp () =
  let rng = Rng.create ~seed:2 in
  let inst = Tsp_instance.random_uniform rng ~n:14 in
  let tour = Tour.random rng inst in
  let initial = Tour.length tour in
  let p =
    Tsp_f2.params ~gfun:(Gfun.cohoon_sahni ~m:14)
      ~schedule:(Schedule.constant ~k:1 1.)
      ~budget:(Budget.Evaluations 5000) ()
  in
  let r = Tsp_f2.run rng p tour in
  Alcotest.check Alcotest.bool "descends to 2-opt optimum territory" true
    (r.Mc_problem.best_cost < initial);
  Alcotest.check Alcotest.bool "multiple descents" true
    (r.Mc_problem.stats.Mc_problem.descents >= 1);
  Alcotest.check (Alcotest.float 1e-6) "length cache intact"
    (Tour.recompute_length r.Mc_problem.best)
    (Tour.length r.Mc_problem.best)

let test_rejectionless_on_arrangement () =
  let rng = Rng.create ~seed:3 in
  let nl = Netlist.random_gola rng ~elements:10 ~nets:40 in
  let arr = Arrangement.random rng nl in
  let initial = Arrangement.density arr in
  let p =
    Arr_rless.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 0.3 |])
      ~budget:(Budget.Evaluations 20_000)
  in
  let r = Arr_rless.run rng p arr in
  Alcotest.check Alcotest.bool "reduces density" true
    (int_of_float r.Mc_problem.best_cost < initial);
  Arrangement.check arr

let test_sa_then_route_pipeline () =
  (* The channel_router example's pipeline: the routed track count must
     equal the optimized density exactly. *)
  let rng = Rng.create ~seed:4 in
  let nl = Netlist.random_nola rng ~elements:12 ~nets:25 ~min_pins:2 ~max_pins:4 in
  let arr = Arrangement.random rng nl in
  let p =
    Arr_f1.params ~gfun:Gfun.g_one ~schedule:(Schedule.constant ~k:1 1.)
      ~budget:(Budget.Evaluations 3000) ()
  in
  let r = Arr_f1.run rng p arr in
  let best = r.Mc_problem.best in
  let layout = Single_row.assign best in
  Alcotest.check Alcotest.int "tracks = optimized density"
    (int_of_float r.Mc_problem.best_cost)
    layout.Single_row.track_count;
  Alcotest.check Alcotest.bool "layout verifies" true
    (Single_row.verify best layout = Ok ())

let test_sa_then_fm_polish () =
  (* FM as a post-pass can only improve the SA result. *)
  let rng = Rng.create ~seed:5 in
  let nl = Netlist.random_gola rng ~elements:24 ~nets:70 in
  let part = Bipartition.random_balanced rng nl in
  let p =
    Part_f1.params ~gfun:Gfun.six_temp_annealing ~schedule:(Schedule.kirkpatrick ())
      ~budget:(Budget.Evaluations 5000) ()
  in
  let r = Part_f1.run rng p part in
  let polished = Bipartition.copy r.Mc_problem.best in
  ignore (Fm.refine polished);
  Alcotest.check Alcotest.bool "FM polish never hurts" true
    (Bipartition.cut polished <= int_of_float r.Mc_problem.best_cost);
  Bipartition.check polished

let test_goto_seed_plus_sa_placement () =
  let rng = Rng.create ~seed:6 in
  let nl = Netlist.random_nola rng ~elements:24 ~nets:60 ~min_pins:2 ~max_pins:4 in
  let seeded = Placement.goto_seeded ~rows:4 ~cols:6 nl in
  let seeded_hpwl = Placement.hpwl seeded in
  let p =
    Place_f1.params ~gfun:Gfun.g_one ~schedule:(Schedule.constant ~k:1 1.)
      ~budget:(Budget.Evaluations 6000) ()
  in
  let r = Place_f1.run rng p seeded in
  Alcotest.check Alcotest.bool "SA on a Goto seed never ends worse" true
    (int_of_float r.Mc_problem.best_cost <= seeded_hpwl);
  Placement.check r.Mc_problem.best

let test_figure2_on_floorplan () =
  (* Floorplans have an enumerable neighborhood, so Figure 2's descent
     works on them. *)
  let rng = Rng.create ~seed:7 in
  let dims = Array.init 8 (fun _ -> (Rng.int_range rng 2 8, Rng.int_range rng 2 8)) in
  let f = Floorplan.create dims in
  let initial = Floorplan.area f in
  let p =
    Floor_f2.params ~gfun:Gfun.two_level ~schedule:(Schedule.constant ~k:2 1.)
      ~budget:(Budget.Evaluations 8000) ()
  in
  let r = Floor_f2.run rng p f in
  Alcotest.check Alcotest.bool "area shrinks" true
    (int_of_float r.Mc_problem.best_cost < initial);
  Floorplan.check r.Mc_problem.best

let test_wiring_all_gfuns_finite () =
  (* Sweep the entire catalog over a wiring instance: every class must
     run to completion and return a sane best cost. *)
  let ends = Wiring.random_instance (Rng.create ~seed:8) ~width:5 ~height:5 ~nets:40 in
  List.iter
    (fun gfun ->
      let w = Wiring.create ~width:5 ~height:5 ends in
      let naive = Wiring.cost w in
      let schedule =
        if Gfun.uses_temperature gfun then Schedule.constant ~k:(Gfun.k gfun) 2.
        else Schedule.constant ~k:(Gfun.k gfun) 1.
      in
      let p = Wire_f1.params ~gfun ~schedule ~budget:(Budget.Evaluations 500) () in
      let r = Wire_f1.run (Rng.create ~seed:9) p w in
      Alcotest.check Alcotest.bool
        (Gfun.name gfun ^ " best within [0, naive]")
        true
        (r.Mc_problem.best_cost > 0. && r.Mc_problem.best_cost <= float_of_int naive))
    (Gfun.catalog ~m:40)

let test_tuner_on_tsp () =
  let inst = Tsp_instance.random_uniform (Rng.create ~seed:10) ~n:15 in
  let outcome =
    Tsp_tuner.grid_search (Rng.create ~seed:11) ~gfun:Gfun.metropolis
      ~candidates:[ 0.001; 0.05; 1. ]
      ~shape:(fun base -> Schedule.of_array [| base |])
      ~budget:(Budget.Evaluations 1500)
      ~instances:[ (fun () -> Tour.random (Rng.create ~seed:12) inst) ]
  in
  Alcotest.check Alcotest.int "three candidates scored" 3
    (List.length outcome.Tsp_tuner.per_candidate);
  Alcotest.check Alcotest.bool "positive reduction found" true
    (outcome.Tsp_tuner.total_reduction > 0.)

let test_traced_over_partition () =
  let module TPart = Traced.Make (Partition_problem) in
  let module E = Figure1.Make (TPart) in
  let nl = Netlist.random_gola (Rng.create ~seed:13) ~elements:16 ~nets:40 in
  let start = TPart.wrap (Bipartition.random_balanced (Rng.create ~seed:14) nl) in
  let p =
    E.params ~gfun:Gfun.g_one ~schedule:(Schedule.constant ~k:1 1.)
      ~budget:(Budget.Evaluations 1000) ()
  in
  let r = E.run (Rng.create ~seed:15) p start in
  let rec_ = TPart.recorder start in
  Alcotest.check Alcotest.int "1001 evaluations traced" 1001 (Traced.Recorder.count rec_);
  Alcotest.check (Alcotest.float 1e-9) "trace minimum = engine best"
    r.Mc_problem.best_cost (Traced.Recorder.minimum rec_)

module Arr_multi = Multi_start.Make (Linarr_problem.Swap)

let multi_outcome ~domains =
  let nl = Netlist.random_gola (Rng.create ~seed:20) ~elements:12 ~nets:60 in
  let params =
    Arr_multi.Engine.params ~gfun:Gfun.g_one ~schedule:(Schedule.constant ~k:1 1.)
      ~budget:(Budget.Evaluations 800) ()
  in
  Arr_multi.run ~domains (Rng.create ~seed:21) ~chains:6 ~params
    ~make_state:(fun i -> Arrangement.random (Rng.create ~seed:(100 + i)) nl)

let test_multi_start_basics () =
  let o = multi_outcome ~domains:1 in
  Alcotest.check Alcotest.int "6 chain costs" 6 (Array.length o.Arr_multi.chain_costs);
  Alcotest.check Alcotest.int "evaluations add up" (6 * 800) o.Arr_multi.total_evaluations;
  let best = Array.fold_left Float.min infinity o.Arr_multi.chain_costs in
  Alcotest.check (Alcotest.float 0.) "best is the minimum chain"
    best o.Arr_multi.best.Mc_problem.best_cost

let test_multi_start_domain_count_invariant () =
  let sequential = multi_outcome ~domains:1 in
  let parallel = multi_outcome ~domains:4 in
  Alcotest.check (Alcotest.array (Alcotest.float 0.)) "identical chain costs"
    sequential.Arr_multi.chain_costs parallel.Arr_multi.chain_costs

let test_multi_start_validation () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  let nl = Netlist.random_gola (Rng.create ~seed:22) ~elements:5 ~nets:6 in
  let params =
    Arr_multi.Engine.params ~gfun:Gfun.g_one ~schedule:(Schedule.constant ~k:1 1.)
      ~budget:(Budget.Evaluations 10) ()
  in
  let make_state _ = Arrangement.random (Rng.create ~seed:23) nl in
  invalid (fun () -> Arr_multi.run (Rng.create ~seed:24) ~chains:0 ~params ~make_state);
  invalid (fun () ->
      Arr_multi.run ~domains:0 (Rng.create ~seed:24) ~chains:2 ~params ~make_state)

let suite =
  [
    case "multi-start: basics" test_multi_start_basics;
    case "multi-start: domain count does not change results"
      test_multi_start_domain_count_invariant;
    case "multi-start: validation" test_multi_start_validation;
    case "Figure 1 over the relocate neighborhood" test_relocate_engine;
    case "Figure 2 over TSP" test_figure2_on_tsp;
    case "rejectionless over arrangements" test_rejectionless_on_arrangement;
    case "SA-then-route pipeline" test_sa_then_route_pipeline;
    case "SA-then-FM polish" test_sa_then_fm_polish;
    case "Goto seed + SA placement" test_goto_seed_plus_sa_placement;
    case "Figure 2 over floorplans" test_figure2_on_floorplan;
    case "whole g-catalog drives wiring" test_wiring_all_gfuns_finite;
    case "tuner over TSP" test_tuner_on_tsp;
    case "traced wrapper over partitions" test_traced_over_partition;
  ]
