(* The Figure 1 / Figure 2 / rejectionless engines, exercised on a tiny
   synthetic problem with a hand-checkable landscape, then integrated
   with the arrangement substrate. *)

let case name f = Alcotest.test_case name `Quick f

(* A walker on the integers.  [cost_fn] shapes the landscape; moves are
   +-1 steps.  V-shaped |x| gives a single optimum; W-shaped
   ||x| - 3| gives two optima separated by a barrier at 0. *)
module Line = struct
  type state = { mutable x : int; cost_fn : int -> float }
  type move = int

  let cost s = s.cost_fn s.x
  let random_move rng _ = if Rng.bool rng then 1 else -1
  let apply s m = s.x <- s.x + m
  let revert s m = s.x <- s.x - m
  let copy s = { s with x = s.x }
  let moves _ = List.to_seq [ -1; 1 ]
end

module F1 = Figure1.Make (Line)
module F2 = Figure2.Make (Line)
module RL = Rejectionless.Make (Line)

let vee x = float_of_int (abs x)
let double_well x = float_of_int (abs (abs x - 3))
let never_uphill = Gfun.custom ~name:"never" ~k:1 (fun ~temp:_ ~y:_ ~hi:_ ~hj:_ -> 0.)
let always_uphill = Gfun.custom ~name:"always" ~k:1 (fun ~temp:_ ~y:_ ~hi:_ ~hj:_ -> 1.)

let one_schedule = Schedule.constant ~k:1 1.

(* ---------------------------- Figure 1 --------------------------- *)

let test_f1_budget_respected () =
  let s = { Line.x = 100; cost_fn = vee } in
  let p = F1.params ~gfun:never_uphill ~schedule:one_schedule ~budget:(Budget.Evaluations 57) () in
  let r = F1.run (Rng.create ~seed:1) p s in
  Alcotest.check Alcotest.int "exactly 57 evaluations" 57 r.Mc_problem.stats.Mc_problem.evaluations

let test_f1_descends_to_optimum () =
  let s = { Line.x = 10; cost_fn = vee } in
  let p = F1.params ~gfun:never_uphill ~schedule:one_schedule ~budget:(Budget.Evaluations 500) () in
  let r = F1.run (Rng.create ~seed:2) p s in
  Alcotest.check (Alcotest.float 0.) "reaches 0" 0. r.Mc_problem.best_cost;
  Alcotest.check (Alcotest.float 0.) "stays at 0 (uphill never accepted)" 0. r.Mc_problem.final_cost;
  Alcotest.check Alcotest.int "no uphill accepted" 0 r.Mc_problem.stats.Mc_problem.uphill_accepted

let test_f1_best_never_worse_than_initial () =
  let s = { Line.x = 4; cost_fn = vee } in
  let p = F1.params ~gfun:always_uphill ~schedule:one_schedule ~budget:(Budget.Evaluations 100) () in
  let r = F1.run (Rng.create ~seed:3) p s in
  Alcotest.check Alcotest.bool "best <= initial" true (r.Mc_problem.best_cost <= 4.)

let test_f1_crosses_barrier_with_uphill () =
  (* Start in the x = +3 well; only uphill acceptance can reach -3.
     With g = 0 the walk stays trapped at x = 3. *)
  let trapped = { Line.x = 3; cost_fn = double_well } in
  let p0 = F1.params ~gfun:never_uphill ~schedule:one_schedule ~budget:(Budget.Evaluations 2000) () in
  let r0 = F1.run (Rng.create ~seed:4) p0 trapped in
  Alcotest.check Alcotest.bool "trapped in the + well" true (trapped.Line.x > 0);
  Alcotest.check Alcotest.int "no uphill" 0 r0.Mc_problem.stats.Mc_problem.uphill_accepted;
  let free = { Line.x = 3; cost_fn = double_well } in
  let p1 = F1.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 5. |])
      ~budget:(Budget.Evaluations 2000) () in
  let r1 = F1.run (Rng.create ~seed:4) p1 free in
  Alcotest.check Alcotest.bool "accepts uphill" true
    (r1.Mc_problem.stats.Mc_problem.uphill_accepted > 0)

let test_f1_defer_rule () =
  (* g = 1 with the defer rule: uphill moves do get taken, but only
     after [threshold] consecutive energy-increasing proposals. *)
  let s = { Line.x = 0; cost_fn = vee } in
  let p =
    F1.params ~defer_threshold:3 ~gfun:Gfun.g_one ~schedule:one_schedule
      ~budget:(Budget.Evaluations 200) ()
  in
  let r = F1.run (Rng.create ~seed:5) p s in
  (* At the optimum every proposal is uphill, so with threshold 3 about
     a third of the 200 proposals are accepted climbs. *)
  let climbs = r.Mc_problem.stats.Mc_problem.uphill_accepted in
  Alcotest.check Alcotest.bool "climbs happen" true (climbs > 20);
  Alcotest.check Alcotest.bool "but only about 1 in 3" true (climbs < 100);
  Alcotest.check (Alcotest.float 0.) "best still 0" 0. r.Mc_problem.best_cost

let test_f1_defer_threshold_1_always_climbs () =
  let s = { Line.x = 0; cost_fn = vee } in
  let p =
    F1.params ~defer_threshold:1 ~gfun:Gfun.g_one ~schedule:one_schedule
      ~budget:(Budget.Evaluations 100) ()
  in
  let r = F1.run (Rng.create ~seed:6) p s in
  Alcotest.check Alcotest.int "every non-improving proposal accepted" 0
    r.Mc_problem.stats.Mc_problem.rejected

let test_f1_lateral_moves_accepted () =
  let s = { Line.x = 0; cost_fn = (fun _ -> 7.) } in
  let p = F1.params ~gfun:Gfun.metropolis ~schedule:one_schedule ~budget:(Budget.Evaluations 100) () in
  let r = F1.run (Rng.create ~seed:7) p s in
  Alcotest.check Alcotest.int "all lateral" 100 r.Mc_problem.stats.Mc_problem.lateral_accepted;
  Alcotest.check Alcotest.int "none rejected" 0 r.Mc_problem.stats.Mc_problem.rejected

let test_f1_temperatures_advance () =
  let s = { Line.x = 50; cost_fn = vee } in
  let p =
    F1.params ~gfun:Gfun.six_temp_annealing ~schedule:(Schedule.kirkpatrick ())
      ~budget:(Budget.Evaluations 600) ()
  in
  let r = F1.run (Rng.create ~seed:8) p s in
  Alcotest.check Alcotest.int "all six temperatures visited" 6
    r.Mc_problem.stats.Mc_problem.temperatures_visited

let test_f1_counter_limit_stops_early () =
  (* At the optimum with g = 0, every proposal is rejected; the counter
     marches through the k = 1 schedule and stops the run. *)
  let s = { Line.x = 0; cost_fn = vee } in
  let p =
    F1.params ~counter_limit:10 ~gfun:never_uphill ~schedule:one_schedule
      ~budget:(Budget.Evaluations 10_000) ()
  in
  let r = F1.run (Rng.create ~seed:9) p s in
  Alcotest.check Alcotest.bool "stopped long before the budget" true
    (r.Mc_problem.stats.Mc_problem.evaluations < 100)

let test_f1_schedule_mismatch_rejected () =
  match
    F1.params ~gfun:Gfun.six_temp_annealing ~schedule:one_schedule
      ~budget:(Budget.Evaluations 10) ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_f1_deterministic () =
  let run () =
    let s = { Line.x = 30; cost_fn = double_well } in
    let p = F1.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 2. |])
        ~budget:(Budget.Evaluations 400) () in
    let r = F1.run (Rng.create ~seed:10) p s in
    (r.Mc_problem.best_cost, s.Line.x)
  in
  Alcotest.check (Alcotest.pair (Alcotest.float 0.) Alcotest.int) "identical runs" (run ()) (run ())

let test_f1_seconds_budget_terminates () =
  (* The wall-clock budget path: a tiny CPU allowance must stop the
     run promptly (the poll happens every 64 ticks). *)
  let s = { Line.x = 1000; cost_fn = vee } in
  let p =
    F1.params ~gfun:never_uphill ~schedule:one_schedule ~budget:(Budget.Seconds 0.05) ()
  in
  let r = F1.run (Rng.create ~seed:50) p s in
  Alcotest.check Alcotest.bool "ran some proposals" true
    (r.Mc_problem.stats.Mc_problem.evaluations > 0)

let test_gfun_custom () =
  let g =
    Gfun.custom ~name:"step" ~k:2 (fun ~temp ~y:_ ~hi:_ ~hj:_ ->
        if temp = 1 then 0.8 else 0.1)
  in
  Alcotest.check Alcotest.string "name" "step" (Gfun.name g);
  Alcotest.check Alcotest.int "k" 2 (Gfun.k g);
  Alcotest.check Alcotest.bool "not deferring" false (Gfun.defer_uphill g);
  Alcotest.check (Alcotest.float 0.) "temp routing" 0.1
    (Gfun.eval g ~temp:2 ~y:1. ~hi:0. ~hj:1.)

let test_f1_acceptance_limit_advances () =
  (* Constant cost: every proposal is lateral and accepted under
     Metropolis, so an acceptance limit of 10 burns through the k = 6
     schedule after 60 acceptances and stops. *)
  let s = { Line.x = 0; cost_fn = (fun _ -> 5.) } in
  let p =
    F1.params ~acceptance_limit:10 ~gfun:Gfun.six_temp_annealing
      ~schedule:(Schedule.kirkpatrick ()) ~budget:(Budget.Evaluations 100_000) ()
  in
  let r = F1.run (Rng.create ~seed:40) p s in
  Alcotest.check Alcotest.int "6 temps x 10 acceptances" 60
    r.Mc_problem.stats.Mc_problem.evaluations;
  Alcotest.check Alcotest.int "all temperatures visited" 6
    r.Mc_problem.stats.Mc_problem.temperatures_visited

let test_f1_acceptance_limit_validation () =
  match
    F1.params ~acceptance_limit:0 ~gfun:never_uphill ~schedule:one_schedule
      ~budget:(Budget.Evaluations 1) ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "acceptance_limit 0 accepted"

let test_annealing_k () =
  Alcotest.check Alcotest.int "k = 25" 25 (Gfun.k (Gfun.annealing ~k:25));
  Alcotest.check Alcotest.string "k = 1 is Metropolis" "Metropolis"
    (Gfun.name (Gfun.annealing ~k:1));
  Alcotest.check Alcotest.string "k = 6 is the catalog class" "Six Temperature Annealing"
    (Gfun.name (Gfun.annealing ~k:6));
  let s = { Line.x = 40; cost_fn = vee } in
  let p =
    F1.params ~gfun:(Gfun.annealing ~k:25)
      ~schedule:(Schedule.uniform_points ~count:25 ~max:5.)
      ~budget:(Budget.Evaluations 3000) ()
  in
  let r = F1.run (Rng.create ~seed:41) p s in
  Alcotest.check Alcotest.int "25 temperatures visited" 25
    r.Mc_problem.stats.Mc_problem.temperatures_visited;
  Alcotest.check Alcotest.bool "made progress" true (r.Mc_problem.best_cost < 40.)

(* ----------------------------- Traced ---------------------------- *)

module TLine = Traced.Make (Line)
module TF1 = Figure1.Make (TLine)

let test_traced_transparent () =
  (* A run through the wrapper must land exactly where a bare run
     lands (same rng stream, same decisions). *)
  let bare = { Line.x = 12; cost_fn = double_well } in
  let pb = F1.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 2. |])
      ~budget:(Budget.Evaluations 500) () in
  let rb = F1.run (Rng.create ~seed:42) pb bare in
  let wrapped = TLine.wrap { Line.x = 12; cost_fn = double_well } in
  let pw = TF1.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 2. |])
      ~budget:(Budget.Evaluations 500) () in
  let rw = TF1.run (Rng.create ~seed:42) pw wrapped in
  Alcotest.check (Alcotest.float 0.) "same best cost" rb.Mc_problem.best_cost
    rw.Mc_problem.best_cost;
  Alcotest.check Alcotest.int "same final position" bare.Line.x
    (TLine.unwrap wrapped).Line.x

let test_traced_records_everything () =
  let wrapped = TLine.wrap { Line.x = 5; cost_fn = vee } in
  let p = TF1.params ~gfun:never_uphill ~schedule:one_schedule
      ~budget:(Budget.Evaluations 300) () in
  ignore (TF1.run (Rng.create ~seed:43) p wrapped);
  let rec_ = TLine.recorder wrapped in
  (* one evaluation at engine start + one per proposal *)
  Alcotest.check Alcotest.int "count = evals + 1" 301 (Traced.Recorder.count rec_);
  Alcotest.check (Alcotest.float 0.) "minimum found" 0. (Traced.Recorder.minimum rec_)

let test_traced_decimation () =
  let wrapped = TLine.wrap ~capacity:16 { Line.x = 0; cost_fn = vee } in
  let p = TF1.params ~defer_threshold:2 ~gfun:Gfun.g_one ~schedule:one_schedule
      ~budget:(Budget.Evaluations 10_000) () in
  ignore (TF1.run (Rng.create ~seed:44) p wrapped);
  let rec_ = TLine.recorder wrapped in
  let series = Traced.Recorder.series rec_ in
  Alcotest.check Alcotest.bool "bounded memory" true (Array.length series <= 16);
  Alcotest.check Alcotest.bool "stride grew" true (Traced.Recorder.stride rec_ > 1);
  Alcotest.check Alcotest.int "counted all" 10_001 (Traced.Recorder.count rec_);
  (* indices strictly increasing *)
  for i = 1 to Array.length series - 1 do
    Alcotest.check Alcotest.bool "monotone indices" true
      (fst series.(i) > fst series.(i - 1))
  done

let test_traced_copy_shares_recorder () =
  let wrapped = TLine.wrap { Line.x = 3; cost_fn = vee } in
  let snapshot = TLine.copy wrapped in
  ignore (TLine.cost snapshot);
  Alcotest.check Alcotest.int "recorded through the snapshot" 1
    (Traced.Recorder.count (TLine.recorder wrapped))

(* ---------------------------- Figure 2 --------------------------- *)

let test_f2_descends_before_uphill () =
  let s = { Line.x = 7; cost_fn = vee } in
  let p = F2.params ~gfun:never_uphill ~schedule:one_schedule ~budget:(Budget.Evaluations 1000) () in
  let r = F2.run (Rng.create ~seed:11) p s in
  Alcotest.check (Alcotest.float 0.) "local optimum reached" 0. r.Mc_problem.best_cost;
  Alcotest.check Alcotest.bool "at least one descent" true
    (r.Mc_problem.stats.Mc_problem.descents >= 1)

let test_f2_redescends_after_uphill () =
  let s = { Line.x = 3; cost_fn = double_well } in
  let p =
    F2.params ~gfun:always_uphill ~schedule:one_schedule ~budget:(Budget.Evaluations 2000) ()
  in
  let r = F2.run (Rng.create ~seed:12) p s in
  Alcotest.check Alcotest.bool "multiple descents" true (r.Mc_problem.stats.Mc_problem.descents > 3);
  Alcotest.check (Alcotest.float 0.) "best is a well bottom" 0. r.Mc_problem.best_cost

let test_f2_stops_when_schedule_done () =
  let s = { Line.x = 2; cost_fn = vee } in
  let p =
    F2.params ~counter_limit:5 ~restart_schedule:false ~gfun:never_uphill
      ~schedule:one_schedule ~budget:(Budget.Evaluations 100_000) ()
  in
  let r = F2.run (Rng.create ~seed:13) p s in
  Alcotest.check Alcotest.bool "run ends before the budget" true
    (r.Mc_problem.stats.Mc_problem.evaluations < 1000)

let test_f2_restart_consumes_budget () =
  let s = { Line.x = 2; cost_fn = vee } in
  let p =
    F2.params ~counter_limit:5 ~restart_schedule:true ~gfun:never_uphill
      ~schedule:one_schedule ~budget:(Budget.Evaluations 5_000) ()
  in
  let r = F2.run (Rng.create ~seed:14) p s in
  Alcotest.check Alcotest.int "whole budget used" 5_000 r.Mc_problem.stats.Mc_problem.evaluations

let test_f2_deterministic () =
  let run () =
    let s = { Line.x = 9; cost_fn = double_well } in
    let p = F2.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 1.5 |])
        ~budget:(Budget.Evaluations 500) () in
    (F2.run (Rng.create ~seed:15) p s).Mc_problem.best_cost
  in
  Alcotest.check (Alcotest.float 0.) "identical runs" (run ()) (run ())

(* -------------------------- Rejectionless ------------------------ *)

let test_rl_descends () =
  let s = { Line.x = 6; cost_fn = vee } in
  let p = RL.params ~gfun:never_uphill ~schedule:one_schedule ~budget:(Budget.Evaluations 100) in
  let r = RL.run (Rng.create ~seed:16) p s in
  Alcotest.check (Alcotest.float 0.) "optimum found" 0. r.Mc_problem.best_cost

let test_rl_freezes_and_stops () =
  (* At the optimum with g = 0, no move has positive weight: the engine
     must advance through the schedule and stop, not spin. *)
  let s = { Line.x = 0; cost_fn = vee } in
  let p = RL.params ~gfun:never_uphill ~schedule:one_schedule ~budget:(Budget.Evaluations 100_000) in
  let r = RL.run (Rng.create ~seed:17) p s in
  Alcotest.check Alcotest.bool "stops early when frozen" true
    (r.Mc_problem.stats.Mc_problem.evaluations < 100)

let test_rl_every_step_moves () =
  let s = { Line.x = 0; cost_fn = vee } in
  let p =
    RL.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 50. |])
      ~budget:(Budget.Evaluations 300)
  in
  let r = RL.run (Rng.create ~seed:18) p s in
  let steps = r.Mc_problem.stats.Mc_problem.descents in
  (* each step scans the 2-move neighborhood, then moves *)
  Alcotest.check Alcotest.bool "roughly one step per two evaluations" true
    (steps >= 100 && steps <= 160)

let test_rl_schedule_mismatch () =
  match RL.params ~gfun:Gfun.six_temp_annealing ~schedule:one_schedule ~budget:(Budget.Evaluations 1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------ Temperature/Tuner ---------------------- *)

module Line_temp = Temperature.Make (Line)

let test_temperature_estimate () =
  let s = { Line.x = 0; cost_fn = vee } in
  let e = Line_temp.estimate ~samples:400 (Rng.create ~seed:19) s in
  Alcotest.check Alcotest.bool "sigma positive" true (e.Temperature.sigma > 0.);
  Alcotest.check (Alcotest.float 1e-9) "unit deltas" 1. e.Temperature.mean_abs_delta;
  Alcotest.check (Alcotest.float 1e-9) "min uphill 1" 1. e.Temperature.min_uphill;
  Alcotest.check Alcotest.bool "hot >= cold" true
    (e.Temperature.suggested_y1 >= e.Temperature.suggested_yk)

let test_temperature_estimate_leaves_state () =
  let s = { Line.x = 5; cost_fn = vee } in
  ignore (Line_temp.estimate ~samples:100 (Rng.create ~seed:20) s);
  Alcotest.check Alcotest.int "walks a copy, not the state" 5 s.Line.x

let test_suggest_schedule_shape () =
  let s = { Line.x = 0; cost_fn = vee } in
  let sch = Line_temp.suggest_schedule ~k:6 ~samples:200 (Rng.create ~seed:21) s in
  Alcotest.check Alcotest.int "k = 6" 6 (Schedule.length sch);
  for i = 1 to 5 do
    Alcotest.check Alcotest.bool "decreasing" true (Schedule.get sch i >= Schedule.get sch (i + 1))
  done

module Line_tuner = Tuner.Make (Line)

let test_tuner_picks_better_candidate () =
  (* Metropolis on the double well from x = 3: a warm temperature can
     cross the barrier to the other well; an icy one cannot.  Either
     way the tuner must return one of the candidates, score them all,
     and be deterministic. *)
  let instances = [ (fun () -> { Line.x = 3; cost_fn = double_well }) ] in
  let run () =
    Line_tuner.grid_search (Rng.create ~seed:22) ~gfun:Gfun.metropolis
      ~candidates:[ 0.01; 2. ]
      ~shape:(fun base -> Schedule.of_array [| base |])
      ~budget:(Budget.Evaluations 300) ~instances
  in
  let o = run () in
  Alcotest.check Alcotest.bool "winner is a candidate" true (List.mem o.Line_tuner.base [ 0.01; 2. ]);
  Alcotest.check Alcotest.int "all candidates scored" 2 (List.length o.Line_tuner.per_candidate);
  let o2 = run () in
  Alcotest.check (Alcotest.float 0.) "deterministic" o.Line_tuner.total_reduction
    o2.Line_tuner.total_reduction

let test_tuner_empty_args () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () ->
      Line_tuner.grid_search (Rng.create ~seed:1) ~gfun:Gfun.metropolis ~candidates:[]
        ~shape:(fun b -> Schedule.of_array [| b |])
        ~budget:(Budget.Evaluations 1) ~instances:[ (fun () -> { Line.x = 0; cost_fn = vee }) ]);
  invalid (fun () ->
      Line_tuner.grid_search (Rng.create ~seed:1) ~gfun:Gfun.metropolis ~candidates:[ 1. ]
        ~shape:(fun b -> Schedule.of_array [| b |])
        ~budget:(Budget.Evaluations 1) ~instances:[])

(* -------------------------- Move contract ------------------------ *)

(* Engine runs under [Mc_problem.Contract], which re-verifies
   apply/revert pairing, bit-for-bit cost restoration, copy fidelity
   and side-effect-free enumeration at every call, across four problem
   domains.  A violation raises, so "the run completes" is the
   assertion; we also check the wrapper is semantically transparent. *)

module CLine = Mc_problem.Contract (Line)
module CTsp = Mc_problem.Contract (Tsp_problem)
module CQap = Mc_problem.Contract (Qap.Problem)
module CPart = Mc_problem.Contract (Partition_problem)
module CPlace = Mc_problem.Contract (Placement.Problem)
module CF1_line = Figure1.Make (CLine)
module CF1_tsp = Figure1.Make (CTsp)
module CF2_qap = Figure2.Make (CQap)
module CRL_part = Rejectionless.Make (CPart)
module CF1_place = Figure1.Make (CPlace)

let test_contract_transparent () =
  (* Same seed, bare vs wrapped: the wrapper must not perturb the rng
     stream or the trajectory. *)
  let run_f1 run params state = (run (Rng.create ~seed:77) params state).Mc_problem.best_cost in
  let bare =
    let s = { Line.x = 12; cost_fn = double_well } in
    run_f1 F1.run
      (F1.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 2. |])
         ~budget:(Budget.Evaluations 500) ())
      s
  in
  let wrapped =
    let s = { Line.x = 12; cost_fn = double_well } in
    run_f1 CF1_line.run
      (CF1_line.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 2. |])
         ~budget:(Budget.Evaluations 500) ())
      s
  in
  Alcotest.check (Alcotest.float 0.) "same best cost" bare wrapped;
  Alcotest.check Alcotest.bool "checks ran" true (CLine.checks_performed () > 0)

let test_contract_tsp () =
  let rng = Rng.create ~seed:70 in
  let tour = Tour.random rng (Tsp_instance.random_uniform rng ~n:16) in
  let initial = CTsp.cost tour in
  let p =
    CF1_tsp.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 0.5 |])
      ~budget:(Budget.Evaluations 2000) ()
  in
  let r = CF1_tsp.run (Rng.create ~seed:71) p tour in
  Alcotest.check Alcotest.bool "improved under contract" true
    (r.Mc_problem.best_cost <= initial);
  Alcotest.check Alcotest.bool "contract checks ran" true
    (CTsp.checks_performed () > 2000)

let test_contract_qap () =
  (* Figure 2 descends through [moves], so this exercises the
     enumeration checks too. *)
  let qap = Qap.random_instance (Rng.create ~seed:72) ~n:8 ~max_entry:9 in
  let initial = CQap.cost qap in
  let p =
    CF2_qap.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 10. |])
      ~budget:(Budget.Evaluations 3000) ()
  in
  let r = CF2_qap.run (Rng.create ~seed:73) p qap in
  Alcotest.check Alcotest.bool "improved under contract" true
    (r.Mc_problem.best_cost <= initial);
  Alcotest.check Alcotest.bool "at least one descent" true
    (r.Mc_problem.stats.Mc_problem.descents >= 1);
  Qap.check qap

(* Two triangles joined by a bridge: optimal balanced cut = 1. *)
let two_triangles_nl () =
  Netlist.create ~n_elements:6
    ~pins:
      [|
        [| 0; 1 |]; [| 1; 2 |]; [| 0; 2 |];
        [| 3; 4 |]; [| 4; 5 |]; [| 3; 5 |];
        [| 2; 3 |];
      |]

let test_contract_partition () =
  let part = Bipartition.create (two_triangles_nl ()) in
  let initial = CPart.cost part in
  let p =
    CRL_part.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 1. |])
      ~budget:(Budget.Evaluations 500)
  in
  let r = CRL_part.run (Rng.create ~seed:74) p part in
  Alcotest.check Alcotest.bool "improved under contract" true
    (r.Mc_problem.best_cost <= initial)

let test_contract_placement () =
  let rng = Rng.create ~seed:75 in
  let nl = Netlist.random_gola rng ~elements:12 ~nets:40 in
  let place = Placement.random rng ~rows:4 ~cols:4 nl in
  let initial = CPlace.cost place in
  let p =
    CF1_place.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 2. |])
      ~budget:(Budget.Evaluations 2000) ()
  in
  let r = CF1_place.run (Rng.create ~seed:76) p place in
  Alcotest.check Alcotest.bool "improved under contract" true
    (r.Mc_problem.best_cost <= initial);
  Placement.check place

(* Deliberately broken problems: the sanitizer must catch each break. *)

module Broken_revert = struct
  type state = { mutable x : int }
  type move = int

  let cost s = float_of_int (abs s.x)
  let random_move rng _ = if Rng.bool rng then 1 else -1
  let apply s m = s.x <- s.x + m
  let revert s m = s.x <- s.x - m - 1 (* off by one: does not undo *)
  let copy s = { x = s.x }
  let moves _ = List.to_seq [ 1; -1 ]
end

module CBroken_revert = Mc_problem.Contract (Broken_revert)

module Mutating_moves = struct
  type state = { mutable x : int }
  type move = int

  let cost s = float_of_int (abs s.x)
  let random_move rng _ = if Rng.bool rng then 1 else -1
  let apply s m = s.x <- s.x + m
  let revert s m = s.x <- s.x - m

  let copy s = { x = s.x }

  let moves s =
    s.x <- s.x + 1;
    (* enumeration must not mutate *)
    List.to_seq [ 1; -1 ]
end

module CMutating_moves = Mc_problem.Contract (Mutating_moves)

let expect_violation name f =
  match f () with
  | exception Mc_problem.Contract_violation _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Contract_violation")

let test_contract_catches_bad_revert () =
  expect_violation "broken revert" (fun () ->
      let s = { Broken_revert.x = 2 } in
      let m = CBroken_revert.random_move (Rng.create ~seed:78) s in
      CBroken_revert.apply s m;
      CBroken_revert.revert s m)

let test_contract_catches_unpaired_revert () =
  expect_violation "revert without apply" (fun () ->
      CBroken_revert.revert { Broken_revert.x = 0 } 1)

let test_contract_catches_mutating_moves () =
  expect_violation "mutating moves" (fun () ->
      let (_ : int Seq.t) = CMutating_moves.moves { Mutating_moves.x = 0 } in
      ())

(* ----------------------- Arrangement integration ------------------ *)

module AF1 = Figure1.Make (Linarr_problem.Swap)
module AF2 = Figure2.Make (Linarr_problem.Swap)

let paper_instance seed =
  let rng = Rng.create ~seed in
  let nl = Netlist.random_gola rng ~elements:15 ~nets:150 in
  (nl, Arrangement.random rng nl)

let test_integration_f1_reduces_density () =
  let _, arr = paper_instance 30 in
  let initial = Arrangement.density arr in
  let p = AF1.params ~gfun:Gfun.g_one ~schedule:one_schedule ~budget:(Budget.Evaluations 3000) () in
  let r = AF1.run (Rng.create ~seed:31) p arr in
  Alcotest.check Alcotest.bool "at least 15% reduction" true
    (r.Mc_problem.best_cost <= 0.85 *. float_of_int initial);
  Arrangement.check arr;
  Arrangement.check r.Mc_problem.best

let test_integration_best_cost_consistent () =
  let nl, arr = paper_instance 32 in
  let p = AF1.params ~gfun:Gfun.six_temp_annealing ~schedule:(Schedule.geometric ~y1:3. ~ratio:0.9 ~k:6)
      ~budget:(Budget.Evaluations 2000) () in
  let r = AF1.run (Rng.create ~seed:33) p arr in
  Alcotest.check Alcotest.int "best snapshot's density equals best_cost"
    (int_of_float r.Mc_problem.best_cost)
    (Arrangement.density_of_order nl (Arrangement.order r.Mc_problem.best))

let test_integration_f2_reduces_density () =
  let _, arr = paper_instance 34 in
  let initial = Arrangement.density arr in
  let params = AF2.params ~gfun:(Gfun.cohoon_sahni ~m:150) ~schedule:one_schedule
      ~budget:(Budget.Evaluations 3000) () in
  let r = AF2.run (Rng.create ~seed:35) params arr in
  Alcotest.check Alcotest.bool "reduces density" true
    (r.Mc_problem.best_cost < float_of_int initial);
  Arrangement.check arr

let test_integration_stats_add_up () =
  let _, arr = paper_instance 36 in
  let p = AF1.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 1. |])
      ~budget:(Budget.Evaluations 1000) () in
  let r = AF1.run (Rng.create ~seed:37) p arr in
  let s = r.Mc_problem.stats in
  Alcotest.check Alcotest.int "accepted + rejected = evaluations"
    s.Mc_problem.evaluations
    (s.Mc_problem.improving + s.Mc_problem.lateral_accepted + s.Mc_problem.uphill_accepted
   + s.Mc_problem.rejected)

(* Figure 2's core claim (the invariant behind the strategy): an
   uphill move is only ever taken from a local optimum, i.e. whenever
   [Descent_done] fires with budget left the full [moves] neighborhood
   holds nothing strictly better.  Probed from inside the observer —
   the callback is synchronous, so [state] IS the engine's current
   configuration at that instant.  A [Descent_done] emitted because
   the budget died mid-scan makes no such claim and is skipped. *)
let check_f2_local_optimum (type s m)
    (module P : Mc_problem.S with type state = s and type move = m) ~seed
    ~budget state =
  let module E2 = Figure2.Make (P) in
  let p =
    E2.params ~gfun:always_uphill ~schedule:one_schedule
      ~budget:(Budget.Evaluations budget) ()
  in
  let probed = ref 0 in
  let observer =
    Obs.Observer.of_fun (function
      | Obs.Event.Descent_done { cost; evaluations } when evaluations < budget ->
          incr probed;
          Seq.iter
            (fun m ->
              P.apply state m;
              let c = P.cost state in
              P.revert state m;
              if c < cost -. 1e-9 then
                Alcotest.failf
                  "descent %d: neighbor at cost %g beats the local optimum %g"
                  !probed c cost)
            (P.moves state)
      | _ -> ())
  in
  ignore (E2.run ~observer (Rng.create ~seed) p state);
  Alcotest.check Alcotest.bool "probed at least one completed descent" true
    (!probed > 0)

let test_f2_local_optimum_tsp () =
  let rng = Rng.create ~seed:41 in
  let inst = Tsp_instance.random_uniform rng ~n:9 in
  check_f2_local_optimum
    (module Tsp_problem)
    ~seed:42 ~budget:3000 (Tour.random rng inst)

let test_f2_local_optimum_bipartition () =
  let rng = Rng.create ~seed:43 in
  let nl = Netlist.random_gola rng ~elements:10 ~nets:30 in
  check_f2_local_optimum
    (module Partition_problem)
    ~seed:44 ~budget:3000
    (Bipartition.random_balanced rng nl)

let prop_best_never_exceeds_initial =
  QCheck.Test.make ~name:"qcheck: Figure 1 best never exceeds the initial cost"
    QCheck.(triple int (int_range 0 200) (int_range 1 500))
    (fun (seed, start, budget) ->
      let s = { Line.x = start; cost_fn = double_well } in
      let initial = Line.cost s in
      let p =
        F1.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 1.5 |])
          ~budget:(Budget.Evaluations budget) ()
      in
      let r = F1.run (Rng.create ~seed) p s in
      r.Mc_problem.best_cost <= initial
      && r.Mc_problem.best_cost <= r.Mc_problem.final_cost +. 1e-9)

let prop_stats_accounting =
  QCheck.Test.make ~name:"qcheck: Figure 1 stats partition the evaluations"
    QCheck.(pair int (int_range 1 400))
    (fun (seed, budget) ->
      let s = { Line.x = 25; cost_fn = vee } in
      let p =
        F1.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 2. |])
          ~budget:(Budget.Evaluations budget) ()
      in
      let r = F1.run (Rng.create ~seed) p s in
      let st = r.Mc_problem.stats in
      st.Mc_problem.evaluations
      = st.Mc_problem.improving + st.Mc_problem.lateral_accepted
        + st.Mc_problem.uphill_accepted + st.Mc_problem.rejected)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_best_never_exceeds_initial;
    QCheck_alcotest.to_alcotest prop_stats_accounting;
    case "figure1: budget respected exactly" test_f1_budget_respected;
    case "figure1: descends to the optimum" test_f1_descends_to_optimum;
    case "figure1: best never worse than initial" test_f1_best_never_worse_than_initial;
    case "figure1: uphill acceptance crosses barriers" test_f1_crosses_barrier_with_uphill;
    case "figure1: deferred-uphill rule" test_f1_defer_rule;
    case "figure1: defer threshold 1 accepts everything" test_f1_defer_threshold_1_always_climbs;
    case "figure1: lateral moves accepted" test_f1_lateral_moves_accepted;
    case "figure1: six temperatures visited" test_f1_temperatures_advance;
    case "figure1: counter limit stops early" test_f1_counter_limit_stops_early;
    case "figure1: schedule length checked" test_f1_schedule_mismatch_rejected;
    case "figure1: deterministic" test_f1_deterministic;
    case "figure1: wall-clock budget terminates" test_f1_seconds_budget_terminates;
    case "gfun: custom classes" test_gfun_custom;
    case "figure1: acceptance limit advances temperatures" test_f1_acceptance_limit_advances;
    case "figure1: acceptance limit validated" test_f1_acceptance_limit_validation;
    case "gfun: annealing at arbitrary k" test_annealing_k;
    case "traced: transparent to the engine" test_traced_transparent;
    case "traced: records every evaluation" test_traced_records_everything;
    case "traced: decimation bounds memory" test_traced_decimation;
    case "traced: snapshots share the recorder" test_traced_copy_shares_recorder;
    case "figure2: descends before uphill" test_f2_descends_before_uphill;
    case "figure2: re-descends after uphill" test_f2_redescends_after_uphill;
    case "figure2: stops when schedule done" test_f2_stops_when_schedule_done;
    case "figure2: restart consumes budget" test_f2_restart_consumes_budget;
    case "figure2: deterministic" test_f2_deterministic;
    case "figure2: uphill only from a TSP local optimum" test_f2_local_optimum_tsp;
    case "figure2: uphill only from a bipartition local optimum"
      test_f2_local_optimum_bipartition;
    case "rejectionless: descends" test_rl_descends;
    case "rejectionless: freezes and stops" test_rl_freezes_and_stops;
    case "rejectionless: every step moves" test_rl_every_step_moves;
    case "rejectionless: schedule length checked" test_rl_schedule_mismatch;
    case "temperature: estimate fields" test_temperature_estimate;
    case "temperature: estimate does not mutate" test_temperature_estimate_leaves_state;
    case "temperature: suggested schedule shape" test_suggest_schedule_shape;
    case "tuner: scores and determinism" test_tuner_picks_better_candidate;
    case "tuner: empty arguments rejected" test_tuner_empty_args;
    case "contract: wrapper is transparent" test_contract_transparent;
    case "contract: TSP under Figure 1" test_contract_tsp;
    case "contract: QAP under Figure 2" test_contract_qap;
    case "contract: partition under rejectionless" test_contract_partition;
    case "contract: placement under Figure 1" test_contract_placement;
    case "contract: catches a broken revert" test_contract_catches_bad_revert;
    case "contract: catches an unpaired revert" test_contract_catches_unpaired_revert;
    case "contract: catches mutating enumeration" test_contract_catches_mutating_moves;
    case "integration: Figure 1 reduces density" test_integration_f1_reduces_density;
    case "integration: best snapshot consistent" test_integration_best_cost_consistent;
    case "integration: Figure 2 reduces density" test_integration_f2_reduces_density;
    case "integration: stats add up" test_integration_stats_add_up;
  ]
