(* Grid placement with incremental HPWL. *)

let case name f = Alcotest.test_case name `Quick f

(* 4 cells, nets {0,1} and {2,3}. *)
let small () = Netlist.create ~n_elements:4 ~pins:[| [| 0; 1 |]; [| 2; 3 |] |]

let test_row_major_hpwl () =
  (* 2x2 grid, row-major: 0 at (0,0), 1 at (0,1), 2 at (1,0), 3 at (1,1):
     both nets are horizontal unit wires. *)
  let p = Placement.create ~rows:2 ~cols:2 (small ()) in
  Alcotest.check Alcotest.int "hpwl 2" 2 (Placement.hpwl p);
  Alcotest.check Alcotest.int "net 0 hpwl" 1 (Placement.net_hpwl p 0);
  Placement.check p

let test_coordinates_fixed () =
  (* 5 cells row-major on a 2x3 grid: cell 4 lands on slot (1,1), and
     slot (1,2) stays empty. *)
  let nl = Netlist.create ~n_elements:5 ~pins:[| [| 0; 4 |]; [| 1; 2 |] |] in
  let p = Placement.create ~rows:2 ~cols:3 nl in
  Alcotest.check (Alcotest.pair Alcotest.int Alcotest.int) "cell 0" (0, 0)
    (Placement.slot_of p 0);
  Alcotest.check (Alcotest.pair Alcotest.int Alcotest.int) "cell 3" (1, 0)
    (Placement.slot_of p 3);
  Alcotest.check (Alcotest.option Alcotest.int) "slot (1,1)" (Some 4) (Placement.cell_at p 1 1);
  Alcotest.check (Alcotest.option Alcotest.int) "slot (1,2)" None (Placement.cell_at p 1 2)

let test_validation () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Placement.create ~rows:1 ~cols:3 (small ()));
  invalid (fun () -> Placement.create ~rows:0 ~cols:4 (small ()));
  invalid (fun () -> Placement.create ~order:[| 0; 1; 2 |] ~rows:2 ~cols:2 (small ()));
  invalid (fun () -> Placement.create ~order:[| 0; 1; 2; 2 |] ~rows:2 ~cols:2 (small ()))

let test_swap_updates_hpwl () =
  let p = Placement.create ~rows:2 ~cols:2 (small ()) in
  (* Swap cells 1 and 2: net {0,1} becomes vertical (hpwl 1), net {2,3}
     becomes diagonal-ish: 2 at (0,1), 3 at (1,1): vertical, hpwl 1. *)
  Placement.swap_slots p 1 2;
  Alcotest.check Alcotest.int "hpwl still 2 (both vertical)" 2 (Placement.hpwl p);
  Placement.check p

let test_swap_with_empty () =
  let p = Placement.create ~rows:2 ~cols:3 (small ()) in
  (* Move cell 0 into the far empty corner (1,2) = slot 5. *)
  Placement.swap_slots p 0 5;
  Alcotest.check (Alcotest.option Alcotest.int) "cell moved" (Some 0) (Placement.cell_at p 1 2);
  Alcotest.check (Alcotest.option Alcotest.int) "old slot empty" None (Placement.cell_at p 0 0);
  (* net {0,1}: pins at (1,2) and (0,1): hpwl 2 *)
  Alcotest.check Alcotest.int "net 0 stretched" 2 (Placement.net_hpwl p 0);
  Placement.check p

let test_swap_involution () =
  let rng = Rng.create ~seed:1 in
  let nl = Netlist.random_nola rng ~elements:10 ~nets:25 ~min_pins:2 ~max_pins:4 in
  let p = Placement.random rng ~rows:3 ~cols:4 nl in
  let before = Placement.hpwl p in
  Placement.swap_slots p 2 9;
  Placement.swap_slots p 2 9;
  Alcotest.check Alcotest.int "restored" before (Placement.hpwl p);
  Placement.check p

let test_both_empty_noop () =
  let p = Placement.create ~rows:2 ~cols:3 (small ()) in
  let before = Placement.hpwl p in
  Placement.swap_slots p 4 5;
  Alcotest.check Alcotest.int "no-op" before (Placement.hpwl p);
  Placement.check p

let test_random_walk_consistency () =
  let rng = Rng.create ~seed:2 in
  let nl = Netlist.random_nola rng ~elements:14 ~nets:40 ~min_pins:2 ~max_pins:5 in
  let p = Placement.random rng ~rows:4 ~cols:4 nl in
  for step = 1 to 200 do
    let m = Placement.Problem.random_move rng p in
    Placement.Problem.apply p m;
    if step mod 9 = 0 then Placement.check p
  done;
  Placement.check p

let test_goto_seeded_beats_random_on_average () =
  let rng = Rng.create ~seed:3 in
  let better = ref 0 in
  for _ = 1 to 8 do
    let nl =
      Netlist.random_nola (Rng.split rng) ~elements:24 ~nets:60 ~min_pins:2 ~max_pins:4
    in
    let seeded = Placement.goto_seeded ~rows:4 ~cols:6 nl in
    let rand = Placement.random (Rng.split rng) ~rows:4 ~cols:6 nl in
    if Placement.hpwl seeded < Placement.hpwl rand then incr better
  done;
  Alcotest.check Alcotest.bool "Goto seeding usually helps" true (!better >= 6)

let test_problem_moves_touch_occupied () =
  let p = Placement.create ~rows:2 ~cols:3 (small ()) in
  let moves = List.of_seq (Placement.Problem.moves p) in
  List.iter
    (fun (s1, s2) ->
      let occupied s = Placement.cell_at p (s / 3) (s mod 3) <> None in
      Alcotest.check Alcotest.bool "at least one occupied" true (occupied s1 || occupied s2))
    moves;
  (* 15 slot pairs total, minus the single empty-empty pair (4,5) *)
  Alcotest.check Alcotest.int "pair count" 14 (List.length moves)

let test_sa_improves_placement () =
  let rng = Rng.create ~seed:4 in
  let nl = Netlist.random_nola rng ~elements:16 ~nets:40 ~min_pins:2 ~max_pins:3 in
  let p = Placement.random rng ~rows:4 ~cols:4 nl in
  let initial = Placement.hpwl p in
  let module E = Figure1.Make (Placement.Problem) in
  let params =
    E.params ~gfun:Gfun.g_one ~schedule:(Schedule.constant ~k:1 1.)
      ~budget:(Budget.Evaluations 8000) ()
  in
  let r = E.run rng params p in
  Alcotest.check Alcotest.bool "at least 20% better" true
    (r.Mc_problem.best_cost < 0.8 *. float_of_int initial);
  Placement.check p;
  Placement.check r.Mc_problem.best

let prop_hpwl_consistent =
  QCheck.Test.make ~name:"qcheck: incremental HPWL survives random swap walks"
    (QCheck.make
       QCheck.Gen.(
         int_range 2 5 >>= fun rows ->
         int_range 2 5 >>= fun cols ->
         int >|= fun seed -> (rows, cols, seed)))
    (fun (rows, cols, seed) ->
      let rng = Rng.create ~seed in
      let cells = max 2 (rows * cols - 2) in
      let nl = Netlist.random_gola rng ~elements:cells ~nets:(2 * cells) in
      let p = Placement.random rng ~rows ~cols nl in
      for _ = 1 to 30 do
        let m = Placement.Problem.random_move rng p in
        Placement.Problem.apply p m
      done;
      match Placement.check p with () -> true | exception Failure _ -> false)

let suite =
  [
    case "row-major HPWL" test_row_major_hpwl;
    case "coordinates and occupancy" test_coordinates_fixed;
    case "validation" test_validation;
    case "swap updates HPWL" test_swap_updates_hpwl;
    case "swap into an empty slot" test_swap_with_empty;
    case "swap is an involution" test_swap_involution;
    case "empty-empty swap is a no-op" test_both_empty_noop;
    case "random walk consistency" test_random_walk_consistency;
    case "Goto seeding beats random starts" test_goto_seeded_beats_random_on_average;
    case "problem moves touch occupied slots" test_problem_moves_touch_occupied;
    case "SA improves a random placement" test_sa_improves_placement;
    QCheck_alcotest.to_alcotest prop_hpwl_consistent;
  ]
