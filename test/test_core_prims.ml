(* Budget, Schedule, and Gfun: the engine-independent pieces. *)

let case name f = Alcotest.test_case name `Quick f
let checkf name expected actual = Alcotest.check (Alcotest.float 1e-9) name expected actual

(* --------------------------- Budget ----------------------------- *)

let test_budget_evaluations () =
  let c = Budget.start (Budget.Evaluations 3) in
  Alcotest.check Alcotest.bool "fresh not exhausted" false (Budget.exhausted c);
  Budget.tick c;
  Budget.tick c;
  Alcotest.check Alcotest.bool "2/3 not exhausted" false (Budget.exhausted c);
  Budget.tick c;
  Alcotest.check Alcotest.bool "3/3 exhausted" true (Budget.exhausted c);
  Alcotest.check Alcotest.int "ticks" 3 (Budget.ticks c)

let test_budget_zero () =
  let c = Budget.start (Budget.Evaluations 0) in
  Alcotest.check Alcotest.bool "zero budget exhausted immediately" true (Budget.exhausted c);
  checkf "used fraction 1" 1. (Budget.used_fraction c)

let test_budget_fraction () =
  let c = Budget.start (Budget.Evaluations 10) in
  checkf "0/10" 0. (Budget.used_fraction c);
  for _ = 1 to 5 do
    Budget.tick c
  done;
  checkf "5/10" 0.5 (Budget.used_fraction c);
  for _ = 1 to 10 do
    Budget.tick c
  done;
  checkf "clamped" 1. (Budget.used_fraction c)

let test_budget_negative () =
  Alcotest.check_raises "negative evals"
    (Invalid_argument "Budget.start: negative evaluations") (fun () ->
      ignore (Budget.start (Budget.Evaluations (-1))));
  Alcotest.check_raises "negative seconds"
    (Invalid_argument "Budget.start: negative seconds") (fun () ->
      ignore (Budget.start (Budget.Seconds (-1.))))

let test_budget_scale () =
  (match Budget.scale 1.5 (Budget.Evaluations 6000) with
  | Budget.Evaluations n -> Alcotest.check Alcotest.int "scaled evals" 9000 n
  | Budget.Seconds _ -> Alcotest.fail "kind changed");
  match Budget.scale 2. (Budget.Seconds 3.) with
  | Budget.Seconds s -> checkf "scaled seconds" 6. s
  | Budget.Evaluations _ -> Alcotest.fail "kind changed"

let test_budget_evaluations_or () =
  Alcotest.check Alcotest.int "evals" 7 (Budget.evaluations_or (Budget.Evaluations 7) ~default:0);
  Alcotest.check Alcotest.int "default" 9 (Budget.evaluations_or (Budget.Seconds 1.) ~default:9)

let test_budget_seconds_mode () =
  (* A seconds budget of 0 must exhaust on the first poll. *)
  let c = Budget.start (Budget.Seconds 0.) in
  Budget.tick c;
  (* tick count 1: the poll happens at multiples of 64, but the cached
     fraction still reports correctly *)
  checkf "fraction 1 for zero budget" 1. (Budget.used_fraction c)

let test_budget_seconds_clock_regression () =
  (* A fake CPU clock that steps backwards: elapsed time, and with it
     used_fraction and exhausted, must never regress. *)
  let t = ref 0. in
  let now () = !t in
  let c = Budget.start ~now (Budget.Seconds 8.) in
  t := 4.;
  checkf "4/8" 0.5 (Budget.used_fraction c);
  t := 2.;
  checkf "fraction holds at high-water mark" 0.5 (Budget.used_fraction c);
  t := -3.;
  (* clock now reads before the start: still clamped *)
  checkf "fraction survives negative elapsed" 0.5 (Budget.used_fraction c);
  Alcotest.check Alcotest.bool "not exhausted yet" false (Budget.exhausted c);
  t := 9.;
  Alcotest.check Alcotest.bool "exhausted at 9/8" true (Budget.exhausted c);
  t := 0.;
  Alcotest.check Alcotest.bool "exhausted is sticky" true (Budget.exhausted c);
  checkf "fraction clamped to 1" 1. (Budget.used_fraction c)

let test_budget_seconds_negative_from_start () =
  (* Clock regresses before the first read: fraction is 0, never
     negative. *)
  let t = ref 100. in
  let now () = !t in
  let c = Budget.start ~now (Budget.Seconds 5.) in
  t := 90.;
  checkf "no negative fraction" 0. (Budget.used_fraction c);
  Alcotest.check Alcotest.bool "not exhausted" false (Budget.exhausted c)

let test_budget_start_at () =
  let c = Budget.start_at ~ticks:7 (Budget.Evaluations 10) in
  Alcotest.check Alcotest.int "resumed ticks" 7 (Budget.ticks c);
  checkf "resumed fraction" 0.7 (Budget.used_fraction c);
  Budget.tick c;
  Budget.tick c;
  Budget.tick c;
  Alcotest.check Alcotest.bool "exhausts from the resumed count" true (Budget.exhausted c);
  Alcotest.check_raises "negative ticks"
    (Invalid_argument "Budget.start_at: negative ticks") (fun () ->
      ignore (Budget.start_at ~ticks:(-1) (Budget.Evaluations 5)))

(* --------------------------- Schedule --------------------------- *)

let test_schedule_constant () =
  let s = Schedule.constant ~k:4 2.5 in
  Alcotest.check Alcotest.int "length" 4 (Schedule.length s);
  for i = 1 to 4 do
    checkf "all equal" 2.5 (Schedule.get s i)
  done

let test_schedule_geometric () =
  let s = Schedule.geometric ~y1:10. ~ratio:0.9 ~k:6 in
  checkf "first" 10. (Schedule.get s 1);
  checkf "second" 9. (Schedule.get s 2);
  checkf "sixth" (10. *. (0.9 ** 5.)) (Schedule.get s 6)

let test_schedule_kirkpatrick () =
  let s = Schedule.kirkpatrick () in
  Alcotest.check Alcotest.int "k = 6" 6 (Schedule.length s);
  checkf "Y1 = 10" 10. (Schedule.get s 1)

let test_schedule_uniform_points () =
  let s = Schedule.uniform_points ~count:4 ~max:8. in
  checkf "hottest first" 8. (Schedule.get s 1);
  checkf "coldest last" 2. (Schedule.get s 4);
  (* evenly spaced *)
  checkf "step" 2. (Schedule.get s 1 -. Schedule.get s 2)

let test_schedule_monotone_decreasing () =
  List.iter
    (fun s ->
      for i = 1 to Schedule.length s - 1 do
        Alcotest.check Alcotest.bool "non-increasing" true
          (Schedule.get s i >= Schedule.get s (i + 1))
      done)
    [ Schedule.kirkpatrick (); Schedule.uniform_points ~count:10 ~max:5. ]

let test_schedule_lundy_mees () =
  let s = Schedule.lundy_mees ~y1:10. ~beta:0.1 ~k:4 in
  checkf "Y1" 10. (Schedule.get s 1);
  checkf "Y2 = 10/(1+1)" 5. (Schedule.get s 2);
  Alcotest.check (Alcotest.float 1e-9) "Y3 = 5/1.5" (5. /. 1.5) (Schedule.get s 3);
  for i = 1 to 3 do
    Alcotest.check Alcotest.bool "strictly decreasing" true
      (Schedule.get s i > Schedule.get s (i + 1))
  done;
  (* beta = 0 degenerates to a constant schedule *)
  let flat = Schedule.lundy_mees ~y1:2. ~beta:0. ~k:3 in
  checkf "flat" 2. (Schedule.get flat 3);
  match Schedule.lundy_mees ~y1:1. ~beta:(-1.) ~k:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative beta accepted"

let test_schedule_scaled () =
  let s = Schedule.scaled (Schedule.constant ~k:3 2.) 1.5 in
  checkf "scaled" 3. (Schedule.get s 2)

let test_schedule_get_bounds () =
  let s = Schedule.constant ~k:2 1. in
  Alcotest.check_raises "index 0" (Invalid_argument "Schedule.get: index outside 1..k")
    (fun () -> ignore (Schedule.get s 0));
  Alcotest.check_raises "index 3" (Invalid_argument "Schedule.get: index outside 1..k")
    (fun () -> ignore (Schedule.get s 3))

let test_schedule_validation () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Schedule.constant ~k:0 1.);
  invalid (fun () -> Schedule.constant ~k:3 0.);
  invalid (fun () -> Schedule.geometric ~y1:1. ~ratio:0. ~k:3);
  invalid (fun () -> Schedule.geometric ~y1:1. ~ratio:1.1 ~k:3);
  invalid (fun () -> Schedule.of_array [||]);
  invalid (fun () -> Schedule.of_array [| 1.; -2. |])

let test_schedule_of_array_copies () =
  let a = [| 5.; 4. |] in
  let s = Schedule.of_array a in
  a.(0) <- 1.;
  checkf "copied" 5. (Schedule.get s 1)

(* ----------------------------- Gfun ------------------------------ *)

let eval g ~temp ~y ~hi ~hj = Gfun.eval g ~temp ~y ~hi ~hj

let test_metropolis_values () =
  let g = Gfun.metropolis in
  Alcotest.check Alcotest.int "k" 1 (Gfun.k g);
  checkf "zero delta accepts surely" 1. (eval g ~temp:1 ~y:2. ~hi:10. ~hj:10.);
  checkf "delta 2 at Y 2" (exp (-1.)) (eval g ~temp:1 ~y:2. ~hi:10. ~hj:12.)

let test_six_temp_matches_metropolis_formula () =
  let g = Gfun.six_temp_annealing in
  Alcotest.check Alcotest.int "k = 6" 6 (Gfun.k g);
  checkf "same formula" (exp (-0.5)) (eval g ~temp:3 ~y:4. ~hi:1. ~hj:3.)

let test_g_one () =
  let g = Gfun.g_one in
  Alcotest.check Alcotest.bool "defers uphill" true (Gfun.defer_uphill g);
  Alcotest.check Alcotest.bool "no temperatures" false (Gfun.uses_temperature g);
  checkf "always 1" 1. (eval g ~temp:1 ~y:99. ~hi:5. ~hj:50.)

let test_two_level () =
  let g = Gfun.two_level in
  Alcotest.check Alcotest.int "k = 2" 2 (Gfun.k g);
  checkf "level 1" 1. (eval g ~temp:1 ~y:1. ~hi:0. ~hj:9.);
  checkf "level 2" 0.5 (eval g ~temp:2 ~y:1. ~hi:0. ~hj:9.)

let test_poly () =
  checkf "linear" 0.6 (eval (Gfun.poly ~degree:1) ~temp:1 ~y:0.02 ~hi:30. ~hj:31.);
  checkf "quadratic" (0.001 *. 900.) (eval (Gfun.poly ~degree:2) ~temp:1 ~y:0.001 ~hi:30. ~hj:31.);
  checkf "cubic" (1e-5 *. 27000.) (eval (Gfun.poly ~degree:3) ~temp:1 ~y:1e-5 ~hi:30. ~hj:31.)

let test_poly_ignores_hj () =
  let g = Gfun.poly ~degree:2 in
  checkf "independent of h(j)"
    (eval g ~temp:1 ~y:0.01 ~hi:10. ~hj:11.)
    (eval g ~temp:1 ~y:0.01 ~hi:10. ~hj:99.)

let test_exponential () =
  let g = Gfun.exponential in
  checkf "h(i) = Y gives 1" 1. (eval g ~temp:1 ~y:30. ~hi:30. ~hj:31.);
  Alcotest.check Alcotest.bool "smaller h(i) below 1" true
    (eval g ~temp:1 ~y:30. ~hi:10. ~hj:11. < 1.)

let test_diff_classes () =
  checkf "linear diff" 0.25 (eval (Gfun.poly_diff ~degree:1) ~temp:1 ~y:0.5 ~hi:10. ~hj:12.);
  checkf "quadratic diff" 0.125 (eval (Gfun.poly_diff ~degree:2) ~temp:1 ~y:0.5 ~hi:10. ~hj:12.);
  checkf "cubic diff" 0.0625 (eval (Gfun.poly_diff ~degree:3) ~temp:1 ~y:0.5 ~hi:10. ~hj:12.)

let test_diff_zero_delta_is_infinite () =
  let v = eval (Gfun.poly_diff ~degree:1) ~temp:1 ~y:0.5 ~hi:10. ~hj:10. in
  Alcotest.check Alcotest.bool "plateau move accepted surely" true (v = Float.infinity)

let test_exponential_diff () =
  let g = Gfun.exponential_diff in
  checkf "Y = delta gives 1" 1. (eval g ~temp:1 ~y:2. ~hi:10. ~hj:12.);
  Alcotest.check Alcotest.bool "large delta shrinks" true
    (eval g ~temp:1 ~y:2. ~hi:10. ~hj:30. < eval g ~temp:1 ~y:2. ~hi:10. ~hj:12.)

let test_diff_monotone_in_delta () =
  List.iter
    (fun g ->
      let at hj = eval g ~temp:1 ~y:1. ~hi:10. ~hj in
      Alcotest.check Alcotest.bool
        (Gfun.name g ^ " decreasing in delta")
        true
        (at 11. >= at 12. && at 12. >= at 15. && at 15. >= at 30.))
    [
      Gfun.metropolis;
      Gfun.poly_diff ~degree:1;
      Gfun.poly_diff ~degree:2;
      Gfun.poly_diff ~degree:3;
      Gfun.exponential_diff;
    ]

let test_cohoon_sahni () =
  let g = Gfun.cohoon_sahni ~m:150 in
  checkf "density 31 at m 150" (31. /. 155.) (eval g ~temp:1 ~y:1. ~hi:31. ~hj:32.);
  checkf "capped at 0.9" 0.9 (eval g ~temp:1 ~y:1. ~hi:1000. ~hj:1001.)

let test_catalog_shape () =
  let catalog = Gfun.catalog ~m:150 in
  Alcotest.check Alcotest.int "21 rows" 21 (List.length catalog);
  let names = List.map Gfun.name catalog in
  let uniq = List.sort_uniq compare names in
  Alcotest.check Alcotest.int "unique names" 21 (List.length uniq);
  Alcotest.check Alcotest.bool "contains the paper's rows" true
    (List.for_all
       (fun n -> List.mem n names)
       [ "Metropolis"; "Six Temperature Annealing"; "g = 1"; "Two level g"; "Cubic Diff";
         "6 Exponential Diff"; "[COHO83a]" ])

let test_short_catalog_shape () =
  let short = Gfun.short_catalog ~m:150 in
  Alcotest.check Alcotest.int "13 rows" 13 (List.length short);
  let names = List.map Gfun.name short in
  (* classes 5-12 are dropped *)
  List.iter
    (fun dropped ->
      Alcotest.check Alcotest.bool (dropped ^ " dropped") false (List.mem dropped names))
    [ "Linear"; "Quadratic"; "Cubic"; "Exponential"; "6 Linear"; "6 Quadratic"; "6 Cubic";
      "6 Exponential" ]

let test_six_variants_have_k6 () =
  List.iter
    (fun g ->
      if String.length (Gfun.name g) > 1 && String.sub (Gfun.name g) 0 2 = "6 " then
        Alcotest.check Alcotest.int (Gfun.name g ^ " has k = 6") 6 (Gfun.k g))
    (Gfun.catalog ~m:150);
  Alcotest.check Alcotest.int "six temp annealing k" 6 (Gfun.k Gfun.six_temp_annealing)

let test_find_by_name () =
  (match Gfun.find_by_name ~m:150 "g = 1" with
  | Some g -> Alcotest.check Alcotest.string "found" "g = 1" (Gfun.name g)
  | None -> Alcotest.fail "g = 1 not found");
  (match Gfun.find_by_name ~m:150 "CUBIC DIFF" with
  | Some g -> Alcotest.check Alcotest.string "case-insensitive" "Cubic Diff" (Gfun.name g)
  | None -> Alcotest.fail "case-insensitive lookup failed");
  Alcotest.check Alcotest.bool "unknown gives None" true
    (Gfun.find_by_name ~m:150 "no such class" = None)

let test_invalid_degrees () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Gfun.poly ~degree:0);
  invalid (fun () -> Gfun.poly_diff ~degree:0);
  invalid (fun () -> Gfun.cohoon_sahni ~m:(-1))

let prop_metropolis_in_unit_interval =
  QCheck.Test.make ~name:"qcheck: Metropolis value in (0, 1] for uphill moves"
    QCheck.(triple (float_range 0.1 100.) (float_range 0. 100.) (float_range 0. 50.))
    (fun (y, hi, delta) ->
      let v = Gfun.eval Gfun.metropolis ~temp:1 ~y ~hi ~hj:(hi +. delta) in
      v > 0. && v <= 1.)

let suite =
  [
    case "budget: evaluations count down" test_budget_evaluations;
    case "budget: zero exhausts immediately" test_budget_zero;
    case "budget: used fraction" test_budget_fraction;
    case "budget: negative rejected" test_budget_negative;
    case "budget: scaling" test_budget_scale;
    case "budget: evaluations_or" test_budget_evaluations_or;
    case "budget: seconds mode zero" test_budget_seconds_mode;
    case "budget: seconds survives a non-monotonic clock" test_budget_seconds_clock_regression;
    case "budget: seconds never negative" test_budget_seconds_negative_from_start;
    case "budget: start_at resumes the tick count" test_budget_start_at;
    case "schedule: constant" test_schedule_constant;
    case "schedule: geometric" test_schedule_geometric;
    case "schedule: kirkpatrick literal" test_schedule_kirkpatrick;
    case "schedule: uniform points" test_schedule_uniform_points;
    case "schedule: monotone decreasing" test_schedule_monotone_decreasing;
    case "schedule: lundy-mees cooling law" test_schedule_lundy_mees;
    case "schedule: scaled" test_schedule_scaled;
    case "schedule: get bounds" test_schedule_get_bounds;
    case "schedule: validation" test_schedule_validation;
    case "schedule: of_array copies" test_schedule_of_array_copies;
    case "gfun: Metropolis values" test_metropolis_values;
    case "gfun: six-temp formula" test_six_temp_matches_metropolis_formula;
    case "gfun: g = 1" test_g_one;
    case "gfun: two-level" test_two_level;
    case "gfun: polynomial classes" test_poly;
    case "gfun: poly ignores h(j)" test_poly_ignores_hj;
    case "gfun: exponential" test_exponential;
    case "gfun: difference classes" test_diff_classes;
    case "gfun: zero-delta difference is +inf" test_diff_zero_delta_is_infinite;
    case "gfun: exponential difference" test_exponential_diff;
    case "gfun: monotone in delta" test_diff_monotone_in_delta;
    case "gfun: [COHO83a]" test_cohoon_sahni;
    case "gfun: catalog shape" test_catalog_shape;
    case "gfun: short catalog drops classes 5-12" test_short_catalog_shape;
    case "gfun: six-temperature variants have k = 6" test_six_variants_have_k6;
    case "gfun: find_by_name" test_find_by_name;
    case "gfun: invalid constructor args" test_invalid_degrees;
    QCheck_alcotest.to_alcotest prop_metropolis_in_unit_interval;
  ]
