(* The resilience layer: checkpoint persistence (roundtrip, corruption
   and staleness detection), the kill-and-resume acceptance property
   (a resumed run is bit-identical to its uninterrupted twin), the
   chaos fault-injection matrix across all three engines, failure
   containment in the multi-start driver, and the supervisor's
   retry/backoff/deadline/quarantine logic. *)

let case name f = Alcotest.test_case name `Quick f

let ok_or_fail = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let ok_or_fail_load = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Checkpoint.load_error_message e)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let err_containing what = function
  | Ok _ -> Alcotest.fail (Printf.sprintf "expected an error mentioning %S" what)
  | Error msg ->
      if not (contains ~sub:what msg) then
        Alcotest.fail
          (Printf.sprintf "error %S does not mention %S" msg what)

(* ----------------------- shared test fixtures -------------------- *)

module Engine = Figure1.Make (Linarr_problem.Swap)

let netlist = Netlist.random_gola (Rng.create ~seed:11) ~elements:12 ~nets:60
let codec () = Linarr_problem.codec netlist
let fingerprint = Obs.Json.Obj [ ("test", Obs.Json.String "resilience") ]

let engine_params ~evals =
  let gfun = Gfun.six_temp_annealing in
  let schedule = Schedule.geometric ~y1:4.0 ~ratio:0.5 ~k:(Gfun.k gfun) in
  Engine.params ~gfun ~schedule ~budget:(Budget.Evaluations evals) ()

let start_state () = Arrangement.random (Rng.create ~seed:5) netlist

let encode_state a = Obs.Json.to_string ((codec ()).Mc_problem.encode a)

let temp_path () = Filename.temp_file "sa_resilience" ".json"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let sample_snapshot () =
  {
    Figure1.ticks = 2000;
    temp = 3;
    counter = 7;
    accepted_at_temp = 41;
    defer_run = 2;
    initial_cost = 36.;
    current_cost = 19.;
    best_cost = 17.;
    improving = 55;
    lateral_accepted = 200;
    uphill_accepted = 31;
    rejected = 1714;
    rng = Rng.to_state (Rng.create ~seed:9);
  }

(* ----------------------- float bit encoding ---------------------- *)

let test_float_hex_roundtrip () =
  List.iter
    (fun f ->
      let back = ok_or_fail (Checkpoint.float_of_hex (Checkpoint.hex_of_float f)) in
      Alcotest.check Alcotest.int64
        (Printf.sprintf "%h roundtrips bit-exactly" f)
        (Int64.bits_of_float f) (Int64.bits_of_float back))
    [ 0.; -0.; 1.5; -27.; 0.1; Float.nan; Float.infinity; Float.neg_infinity;
      Float.max_float; Float.min_float ]

let test_float_hex_rejects_malformed () =
  List.iter
    (fun s ->
      match Checkpoint.float_of_hex s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S accepted" s)
      | Error _ -> ())
    [ ""; "0x"; "0x123"; "0x00000000000000AB"; "1234567890123456ab";
      "0xzzzzzzzzzzzzzzzz"; "0x0000000000000000ff" ]

(* ------------------------ checkpoint files ----------------------- *)

let test_checkpoint_roundtrip () =
  let path = temp_path () in
  let codec = codec () in
  let snap = sample_snapshot () in
  let current = start_state () in
  let best = Arrangement.random (Rng.create ~seed:6) netlist in
  Checkpoint.save_figure1 ~path ~codec ~fingerprint snap ~current ~best;
  let snap', current', best', rng' =
    ok_or_fail_load (Checkpoint.load_figure1 ~path ~codec ~fingerprint)
  in
  Sys.remove path;
  Alcotest.check Alcotest.bool "snapshot roundtrips" true (snap = snap');
  Alcotest.check Alcotest.string "current state roundtrips"
    (encode_state current) (encode_state current');
  Alcotest.check Alcotest.string "best state roundtrips"
    (encode_state best) (encode_state best');
  Alcotest.check Alcotest.string "rng position roundtrips" snap.Figure1.rng
    (Rng.to_state rng')

let test_checkpoint_save_emits_event () =
  let path = temp_path () in
  let codec = codec () in
  let seen = ref [] in
  let observer = Obs.Observer.of_fun (fun ev -> seen := ev :: !seen) in
  let current = start_state () in
  Checkpoint.save_figure1 ~observer ~path ~codec ~fingerprint
    (sample_snapshot ()) ~current ~best:current;
  Sys.remove path;
  match !seen with
  | [ Obs.Event.Checkpoint_written { path = p; evaluation } ] ->
      Alcotest.check Alcotest.string "event path" path p;
      Alcotest.check Alcotest.int "event evaluation" 2000 evaluation
  | _ -> Alcotest.fail "expected exactly one Checkpoint_written event"

let test_corrupted_checkpoint_rejected () =
  let path = temp_path () in
  let codec = codec () in
  let current = start_state () in
  Checkpoint.save_figure1 ~path ~codec ~fingerprint (sample_snapshot ())
    ~current ~best:current;
  (* Flip one byte inside the payload: the schema wrapper still parses,
     so only the CRC can catch it. *)
  let raw = read_file path in
  let i =
    match String.index_opt raw 'g' with
    | Some i -> i (* first 'g' lands inside "figure1" in the payload *)
    | None -> Alcotest.fail "no byte to corrupt"
  in
  let mangled = Bytes.of_string raw in
  Bytes.set mangled i 'j';
  write_file path (Bytes.to_string mangled);
  err_containing "CRC mismatch" (Checkpoint.read ~path);
  (match Checkpoint.load_figure1 ~path ~codec ~fingerprint with
  | Error (Checkpoint.Corrupt msg) -> err_containing "CRC mismatch" (Error msg)
  | Error (Checkpoint.Stale msg) ->
      Alcotest.fail ("corruption classified stale: " ^ msg)
  | Ok _ -> Alcotest.fail "corrupt checkpoint accepted");
  Sys.remove path

let test_truncated_checkpoint_rejected () =
  let path = temp_path () in
  let codec = codec () in
  let current = start_state () in
  Checkpoint.save_figure1 ~path ~codec ~fingerprint (sample_snapshot ())
    ~current ~best:current;
  let raw = read_file path in
  write_file path (String.sub raw 0 (String.length raw / 2));
  err_containing "not valid JSON" (Checkpoint.read ~path);
  Sys.remove path

let test_wrong_schema_rejected () =
  let path = temp_path () in
  write_file path
    {|{"schema":"sa-lab/other/v9","crc":"00000000","payload":{}}|};
  err_containing "schema" (Checkpoint.read ~path);
  write_file path {|{"foo":1}|};
  err_containing "missing schema" (Checkpoint.read ~path);
  Sys.remove path

let test_stale_fingerprint_rejected () =
  let path = temp_path () in
  let codec = codec () in
  let current = start_state () in
  Checkpoint.save_figure1 ~path ~codec ~fingerprint (sample_snapshot ())
    ~current ~best:current;
  let other = Obs.Json.Obj [ ("test", Obs.Json.String "different-run") ] in
  (match Checkpoint.load_figure1 ~path ~codec ~fingerprint:other with
  | Error (Checkpoint.Stale msg) -> err_containing "fingerprint" (Error msg)
  | Error (Checkpoint.Corrupt msg) ->
      Alcotest.fail ("staleness classified corrupt: " ^ msg)
  | Ok _ -> Alcotest.fail "stale checkpoint accepted");
  Sys.remove path

(* ----------------------- kill and resume ------------------------- *)

exception Simulated_kill

let run_stats (r : _ Mc_problem.run) = r.Mc_problem.stats

let check_runs_identical ~msg (a : Arrangement.t Mc_problem.run)
    (b : Arrangement.t Mc_problem.run) =
  let bits f = Int64.bits_of_float f in
  Alcotest.check Alcotest.int64 (msg ^ ": best_cost")
    (bits a.Mc_problem.best_cost) (bits b.Mc_problem.best_cost);
  Alcotest.check Alcotest.int64 (msg ^ ": final_cost")
    (bits a.Mc_problem.final_cost) (bits b.Mc_problem.final_cost);
  let sa = run_stats a and sb = run_stats b in
  Alcotest.check Alcotest.bool (msg ^ ": stats") true (sa = sb);
  Alcotest.check Alcotest.string (msg ^ ": best state")
    (encode_state a.Mc_problem.best) (encode_state b.Mc_problem.best)

let test_kill_and_resume_bit_identical () =
  let codec = codec () in
  let params = engine_params ~evals:4000 in
  (* Uninterrupted baseline. *)
  let state_base = start_state () in
  let r_base = Engine.run (Rng.create ~seed:7) params state_base in
  (* Same run, killed at evaluation 2000 from inside the checkpoint
     callback — exactly how the CLI's signal flag stops a run. *)
  let path = temp_path () in
  let save snap ~current ~best =
    Checkpoint.save_figure1 ~path ~codec ~fingerprint snap ~current ~best
  in
  let killing snap ~current ~best =
    save snap ~current ~best;
    if snap.Figure1.ticks = 2000 then raise Simulated_kill
  in
  let state_killed = start_state () in
  (match
     Engine.run ~checkpoint_every:1000 ~on_checkpoint:killing
       (Rng.create ~seed:7) params state_killed
   with
  | (_ : Arrangement.t Mc_problem.run) ->
      Alcotest.fail "run was not interrupted"
  | exception Simulated_kill -> ());
  (* Resume from the persisted snapshot and run to completion. *)
  let snap, current, best, rng =
    ok_or_fail_load (Checkpoint.load_figure1 ~path ~codec ~fingerprint)
  in
  Alcotest.check Alcotest.int "killed at evaluation 2000" 2000
    snap.Figure1.ticks;
  Alcotest.check Alcotest.int64 "original initial cost preserved"
    (Int64.bits_of_float (float_of_int (Arrangement.density (start_state ()))))
    (Int64.bits_of_float snap.Figure1.initial_cost);
  let r_res =
    Engine.run ~checkpoint_every:1000 ~on_checkpoint:save ~resume:(snap, best)
      rng params current
  in
  Sys.remove path;
  check_runs_identical ~msg:"resumed vs uninterrupted" r_base r_res;
  Alcotest.check Alcotest.string "final state identical"
    (encode_state state_base) (encode_state current)

let test_checkpointing_is_observation_only () =
  (* Saving checkpoints must not perturb the walk at all. *)
  let codec = codec () in
  let params = engine_params ~evals:3000 in
  let state_plain = start_state () in
  let r_plain = Engine.run (Rng.create ~seed:8) params state_plain in
  let path = temp_path () in
  let save snap ~current ~best =
    Checkpoint.save_figure1 ~path ~codec ~fingerprint snap ~current ~best
  in
  let state_ckpt = start_state () in
  let r_ckpt =
    Engine.run ~checkpoint_every:500 ~on_checkpoint:save (Rng.create ~seed:8)
      params state_ckpt
  in
  Sys.remove path;
  check_runs_identical ~msg:"checkpointed vs plain" r_plain r_ckpt;
  Alcotest.check Alcotest.string "final state identical"
    (encode_state state_plain) (encode_state state_ckpt)

let test_resume_argument_validation () =
  let params = engine_params ~evals:1000 in
  let snap = sample_snapshot () in
  let bad_ticks = { snap with Figure1.ticks = -1 } in
  let bad_temp = { snap with Figure1.temp = 99 } in
  let state () = start_state () in
  Alcotest.check_raises "negative resume ticks"
    (Invalid_argument "Figure1.run: resume with negative ticks") (fun () ->
      ignore (Engine.run ~resume:(bad_ticks, state ()) (Rng.create ~seed:1)
                params (state ())));
  Alcotest.check_raises "temperature out of range"
    (Invalid_argument "Figure1.run: resume temperature out of schedule range")
    (fun () ->
      ignore (Engine.run ~resume:(bad_temp, state ()) (Rng.create ~seed:1)
                params (state ())));
  Alcotest.check_raises "non-positive checkpoint_every"
    (Invalid_argument "Figure1.run: checkpoint_every <= 0") (fun () ->
      ignore (Engine.run ~checkpoint_every:0 (Rng.create ~seed:1) params
                (state ())))

(* --------------------- chaos fault injection --------------------- *)

module Chaos_swap = Mc_problem.Chaos (Linarr_problem.Swap)
module CF1 = Figure1.Make (Chaos_swap)
module CF2 = Figure2.Make (Chaos_swap)
module CRL = Rejectionless.Make (Chaos_swap)

(* Low constant temperature: plenty of rejections, so the revert path
   is exercised early in every engine. *)
let chaos_gfun = Gfun.metropolis
let chaos_schedule = Schedule.constant ~k:1 0.5

let cf1_params =
  lazy
    (CF1.params ~gfun:chaos_gfun ~schedule:chaos_schedule
       ~budget:(Budget.Evaluations 4000) ())

let cf2_params =
  lazy
    (CF2.params ~gfun:chaos_gfun ~schedule:chaos_schedule
       ~budget:(Budget.Evaluations 4000) ())

let crl_params =
  lazy
    (CRL.params ~gfun:chaos_gfun ~schedule:chaos_schedule
       ~budget:(Budget.Evaluations 4000))

(* Run [engine] on a fresh arrangement expecting an abort; return the
   reason, the partial result, and the state the engine was mutating. *)
let abort_of engine =
  let state = Arrangement.random (Rng.create ~seed:21) netlist in
  match engine state with
  | (_ : Arrangement.t Mc_problem.run) ->
      Alcotest.fail "engine completed despite the planned fault"
  | exception e -> (e, state)

let engines =
  [
    ( "figure1",
      fun state -> CF1.run (Rng.create ~seed:22) (Lazy.force cf1_params) state );
    ( "figure2",
      fun state -> CF2.run (Rng.create ~seed:22) (Lazy.force cf2_params) state );
    ( "rejectionless",
      fun state -> CRL.run (Rng.create ~seed:22) (Lazy.force crl_params) state );
  ]

let partial_of_abort name = function
  | CF1.Aborted { reason; partial } -> (reason, partial)
  | CF2.Aborted { reason; partial } -> (reason, partial)
  | CRL.Aborted { reason; partial } -> (reason, partial)
  | e ->
      Alcotest.fail
        (Printf.sprintf "%s: expected Aborted, got %s" name
           (Printexc.to_string e))

let check_aborted_cleanly ~name ~fault_is_cost (reason, partial, state) =
  (match (fault_is_cost, reason) with
  | `Invalid, Mc_problem.Invalid_cost _ -> ()
  | `Fault, Chaos_swap.Fault _ -> ()
  | _, e ->
      Alcotest.fail
        (Printf.sprintf "%s: unexpected abort reason %s" name
           (Printexc.to_string e)));
  Alcotest.check Alcotest.bool (name ^ ": best-so-far cost finite") true
    (Float.is_finite partial.Mc_problem.best_cost);
  Alcotest.check Alcotest.bool (name ^ ": some progress recorded") true
    (partial.Mc_problem.stats.Mc_problem.evaluations > 0);
  (* The state handed to the engine must be internally consistent even
     after the abort: half-applied moves were reverted. *)
  Arrangement.check state;
  Arrangement.check partial.Mc_problem.best

let chaos_matrix_case (fault_name, fault, expected) (engine_name, engine) () =
  Chaos_swap.reset ();
  Chaos_swap.plan ~after:60 fault;
  let e, state = abort_of engine in
  let reason, partial =
    partial_of_abort (engine_name ^ "/" ^ fault_name) e
  in
  Alcotest.check Alcotest.int
    (engine_name ^ "/" ^ fault_name ^ ": fault fired once")
    1 (Chaos_swap.injected ());
  Chaos_swap.reset ();
  check_aborted_cleanly
    ~name:(engine_name ^ "/" ^ fault_name)
    ~fault_is_cost:expected (reason, partial, state)

let chaos_matrix_cases =
  let faults =
    [
      ("nan-cost", Chaos_swap.Nan_cost, `Invalid);
      ("inf-cost", Chaos_swap.Inf_cost, `Invalid);
      ("raise-cost", Chaos_swap.Raise_cost, `Fault);
      ("raise-apply", Chaos_swap.Raise_apply, `Fault);
      ("raise-revert", Chaos_swap.Raise_revert, `Fault);
    ]
  in
  List.concat_map
    (fun engine ->
      List.map
        (fun fault ->
          let fault_name, _, _ = fault in
          let engine_name, _ = engine in
          case
            (Printf.sprintf "chaos: %s survives %s" engine_name fault_name)
            (chaos_matrix_case fault engine))
        faults)
    engines

let test_chaos_slow_move_completes () =
  Chaos_swap.reset ();
  Chaos_swap.plan ~after:5 (Chaos_swap.Slow_move 0.002);
  let state = Arrangement.random (Rng.create ~seed:23) netlist in
  let p =
    CF1.params ~gfun:chaos_gfun ~schedule:chaos_schedule
      ~budget:(Budget.Evaluations 50) ()
  in
  let r = CF1.run (Rng.create ~seed:24) p state in
  Alcotest.check Alcotest.int "slow move fired" 1 (Chaos_swap.injected ());
  Chaos_swap.reset ();
  Alcotest.check Alcotest.int "run still completed its budget" 50
    r.Mc_problem.stats.Mc_problem.evaluations

let test_chaos_plan_validation () =
  Chaos_swap.reset ();
  Alcotest.check_raises "negative after"
    (Invalid_argument "Chaos.plan: negative after") (fun () ->
      Chaos_swap.plan ~after:(-1) Chaos_swap.Nan_cost);
  Alcotest.check_raises "times < 1" (Invalid_argument "Chaos.plan: times < 1")
    (fun () -> Chaos_swap.plan ~times:0 Chaos_swap.Nan_cost);
  Chaos_swap.reset ()

let test_chaos_plan_after_and_times () =
  Chaos_swap.reset ();
  Chaos_swap.plan ~after:2 ~times:2 Chaos_swap.Nan_cost;
  let state = start_state () in
  let c1 = Chaos_swap.cost state and c2 = Chaos_swap.cost state in
  Alcotest.check Alcotest.bool "dormant for the first [after] calls" true
    (Float.is_finite c1 && Float.is_finite c2);
  Alcotest.check Alcotest.bool "fires on the next [times] calls" true
    (Float.is_nan (Chaos_swap.cost state)
    && Float.is_nan (Chaos_swap.cost state));
  Alcotest.check Alcotest.bool "then disarms" true
    (Float.is_finite (Chaos_swap.cost state));
  Alcotest.check Alcotest.int "two faults recorded" 2 (Chaos_swap.injected ());
  Chaos_swap.reset ();
  Alcotest.check Alcotest.int "reset clears the count" 0
    (Chaos_swap.injected ());
  Alcotest.check Alcotest.bool "reset clears the plans" true
    (Float.is_finite (Chaos_swap.cost state))

(* ------------------- multi-start containment --------------------- *)

module CMS = Multi_start.Make (Chaos_swap)

let test_multi_start_contains_aborts () =
  Chaos_swap.reset ();
  (* One single-shot fault: the first chain to pass 200 cost calls
     absorbs it; the other chains must complete untouched. *)
  Chaos_swap.plan ~after:200 Chaos_swap.Raise_cost;
  let params =
    CMS.Engine.params ~gfun:chaos_gfun ~schedule:chaos_schedule
      ~budget:(Budget.Evaluations 1000) ()
  in
  let outcome =
    CMS.run (Rng.create ~seed:31) ~chains:3 ~params
      ~make_state:(fun i -> Arrangement.random (Rng.create ~seed:(100 + i)) netlist)
  in
  Chaos_swap.reset ();
  (match outcome.CMS.failures with
  | [ (0, reason) ] ->
      Alcotest.check Alcotest.bool "reason names the chaos fault" true
        (contains ~sub:"Fault" reason)
  | fs ->
      Alcotest.fail
        (Printf.sprintf "expected chain 0 to fail alone, got %d failures"
           (List.length fs)));
  Alcotest.check Alcotest.int "all chains reported" 3
    (Array.length outcome.CMS.chain_costs);
  Array.iteri
    (fun i c ->
      Alcotest.check Alcotest.bool
        (Printf.sprintf "chain %d cost finite" i)
        true (Float.is_finite c))
    outcome.CMS.chain_costs;
  Alcotest.check Alcotest.bool "winner is finite" true
    (Float.is_finite outcome.CMS.best.Mc_problem.best_cost)

(* --------------------------- supervisor -------------------------- *)

let test_supervisor_retries_then_completes () =
  let slept = ref [] in
  let sleep d = slept := d :: !slept in
  let events = ref [] in
  let observer = Obs.Observer.of_fun (fun ev -> events := ev :: !events) in
  let policy = Supervisor.policy ~max_attempts:3 ~base_delay:0.5 ~backoff:3.0 () in
  let job =
    {
      Supervisor.label = "flaky";
      work = (fun ~attempt -> if attempt < 3 then failwith "transient" else 42);
    }
  in
  let report = Supervisor.run ~observer ~sleep ~now:(fun () -> 0.) policy [ job ] in
  Alcotest.check Alcotest.int "two retries" 2 report.Supervisor.retries;
  Alcotest.check Alcotest.int "nothing quarantined" 0
    report.Supervisor.quarantined;
  (match report.Supervisor.outcomes with
  | [ Supervisor.Completed { label; attempts; value; seconds } ] ->
      Alcotest.check Alcotest.string "label" "flaky" label;
      Alcotest.check Alcotest.int "succeeded on attempt 3" 3 attempts;
      Alcotest.check Alcotest.int "value" 42 value;
      Alcotest.check (Alcotest.float 0.) "seconds from injected clock" 0. seconds
  | _ -> Alcotest.fail "expected one completed outcome");
  Alcotest.check
    (Alcotest.list (Alcotest.float 1e-9))
    "exact backoff sequence: base, base*backoff" [ 0.5; 1.5 ]
    (List.rev !slept);
  let retry_attempts =
    List.filter_map
      (function
        | Obs.Event.Retry { label = _; attempt; delay = _; reason = _ } ->
            Some attempt
        | _ -> None)
      (List.rev !events)
  in
  Alcotest.check (Alcotest.list Alcotest.int) "Retry events per failed attempt"
    [ 1; 2 ] retry_attempts

let test_supervisor_quarantines_after_max_attempts () =
  let events = ref [] in
  let observer = Obs.Observer.of_fun (fun ev -> events := ev :: !events) in
  let policy = Supervisor.policy ~max_attempts:2 ~base_delay:0.01 () in
  let job =
    { Supervisor.label = "doomed"; work = (fun ~attempt:_ -> failwith "always") }
  in
  let report =
    Supervisor.run ~observer ~sleep:(fun _ -> ()) ~now:(fun () -> 0.) policy
      [ job ]
  in
  Alcotest.check Alcotest.int "quarantined" 1 report.Supervisor.quarantined;
  (match report.Supervisor.outcomes with
  | [ Supervisor.Quarantined { label; attempts; reason } ] ->
      Alcotest.check Alcotest.string "label" "doomed" label;
      Alcotest.check Alcotest.int "gave up after max_attempts" 2 attempts;
      Alcotest.check Alcotest.bool "reason carries the exception" true
        (contains ~sub:"always" reason)
  | _ -> Alcotest.fail "expected one quarantined outcome");
  let quarantine_events =
    List.filter
      (function Obs.Event.Quarantined _ -> true | _ -> false)
      !events
  in
  Alcotest.check Alcotest.int "one Quarantined event" 1
    (List.length quarantine_events)

let test_supervisor_deadline () =
  (* Injected clock: every reading advances 10 simulated seconds, so
     each attempt "takes" 10 s against a 1 s deadline. *)
  let t = ref 0. in
  let now () = let v = !t in t := v +. 10.; v in
  let policy = Supervisor.policy ~max_attempts:2 ~base_delay:0.01 ~deadline:1.0 () in
  let job = { Supervisor.label = "slow"; work = (fun ~attempt:_ -> ()) } in
  let report = Supervisor.run ~sleep:(fun _ -> ()) ~now policy [ job ] in
  match report.Supervisor.outcomes with
  | [ Supervisor.Quarantined { label = _; attempts; reason } ] ->
      Alcotest.check Alcotest.int "retried, then quarantined" 2 attempts;
      Alcotest.check Alcotest.string "precise deadline message"
        "deadline exceeded (10.000s > 1.000s)" reason
  | _ -> Alcotest.fail "expected the slow job to be quarantined"

let test_supervisor_fatal_exceptions_propagate () =
  let policy = Supervisor.policy ~max_attempts:5 ~base_delay:0.01 () in
  let job =
    { Supervisor.label = "oom"; work = (fun ~attempt:_ -> raise Out_of_memory) }
  in
  Alcotest.check_raises "Out_of_memory is not retried" Out_of_memory (fun () ->
      ignore (Supervisor.run ~sleep:(fun _ -> ()) ~now:(fun () -> 0.) policy
                [ job ]))

let test_supervisor_policy_validation () =
  let check name f =
    match f () with
    | (_ : Supervisor.policy) -> Alcotest.fail (name ^ " accepted")
    | exception Invalid_argument _ -> ()
  in
  check "max_attempts < 1" (fun () -> Supervisor.policy ~max_attempts:0 ());
  check "negative base_delay" (fun () -> Supervisor.policy ~base_delay:(-1.) ());
  check "backoff < 1" (fun () -> Supervisor.policy ~backoff:0.5 ());
  check "deadline <= 0" (fun () -> Supervisor.policy ~deadline:0. ())

let test_supervisor_report_json () =
  let policy = Supervisor.policy ~max_attempts:2 ~base_delay:0.01 () in
  let jobs =
    [
      { Supervisor.label = "good"; work = (fun ~attempt:_ -> 17) };
      { Supervisor.label = "bad"; work = (fun ~attempt:_ -> failwith "nope") };
    ]
  in
  let report =
    Supervisor.run ~sleep:(fun _ -> ()) ~now:(fun () -> 0.) policy jobs
  in
  let json =
    Supervisor.report_to_json ~value:(fun v -> Obs.Json.Int v) report
  in
  (match Obs.Json.member "schema" json with
  | Some (Obs.Json.String s) ->
      Alcotest.check Alcotest.string "schema tag" Supervisor.report_schema s
  | _ -> Alcotest.fail "missing schema");
  let int_field name =
    match Option.bind (Obs.Json.member name json) Obs.Json.to_int with
    | Some v -> v
    | None -> Alcotest.fail (Printf.sprintf "missing int field %S" name)
  in
  Alcotest.check Alcotest.int "completed" 1 (int_field "completed");
  Alcotest.check Alcotest.int "quarantined" 1 (int_field "quarantined");
  Alcotest.check Alcotest.int "retries" 1 (int_field "retries");
  match Obs.Json.member "outcomes" json with
  | Some (Obs.Json.List [ good; bad ]) ->
      (match Obs.Json.member "value" good with
      | Some (Obs.Json.Int 17) -> ()
      | _ -> Alcotest.fail "completed outcome carries its value");
      (match Obs.Json.member "status" bad with
      | Some (Obs.Json.String "quarantined") -> ()
      | _ -> Alcotest.fail "failed outcome is quarantined");
      (* The rendered report must survive a parse roundtrip. *)
      let text = Obs.Json.to_string json in
      (match Obs.Json.parse text with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("report does not re-parse: " ^ msg))
  | _ -> Alcotest.fail "outcomes is not a two-element list"

(* ------------------------------------------------------------------ *)

let suite =
  [
    case "float bit patterns roundtrip" test_float_hex_roundtrip;
    case "malformed bit patterns rejected" test_float_hex_rejects_malformed;
    case "checkpoint roundtrips" test_checkpoint_roundtrip;
    case "save emits Checkpoint_written" test_checkpoint_save_emits_event;
    case "corrupted checkpoint rejected" test_corrupted_checkpoint_rejected;
    case "truncated checkpoint rejected" test_truncated_checkpoint_rejected;
    case "wrong schema rejected" test_wrong_schema_rejected;
    case "stale fingerprint rejected" test_stale_fingerprint_rejected;
    case "kill and resume is bit-identical" test_kill_and_resume_bit_identical;
    case "checkpointing is observation-only" test_checkpointing_is_observation_only;
    case "resume argument validation" test_resume_argument_validation;
  ]
  @ chaos_matrix_cases
  @ [
      case "chaos: slow moves only delay" test_chaos_slow_move_completes;
      case "chaos: plan validation" test_chaos_plan_validation;
      case "chaos: after/times/reset semantics" test_chaos_plan_after_and_times;
      case "multi-start contains an aborted chain" test_multi_start_contains_aborts;
      case "supervisor retries then completes" test_supervisor_retries_then_completes;
      case "supervisor quarantines after max attempts"
        test_supervisor_quarantines_after_max_attempts;
      case "supervisor deadline is enforced post hoc" test_supervisor_deadline;
      case "supervisor re-raises fatal exceptions"
        test_supervisor_fatal_exceptions_propagate;
      case "supervisor policy validation" test_supervisor_policy_validation;
      case "supervisor report JSON" test_supervisor_report_json;
    ]
