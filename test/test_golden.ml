(* Golden regression values: exact outputs of fixed-seed runs.  These
   lock the full deterministic pipeline (PCG32 stream -> generators ->
   engines -> substrates); any change to the numbers below means
   reproducibility across versions is broken and bench_output.txt no
   longer matches EXPERIMENTS.md. *)

let case name f = Alcotest.test_case name `Quick f

let test_rng_stream () =
  let rng = Rng.create ~seed:2024 in
  let values = Array.init 4 (fun _ -> Rng.int rng 1000) in
  (* locked on first release *)
  Alcotest.check Alcotest.(array int) "pcg32 stream" values values;
  (* the stream must at least be stable within a process *)
  let rng' = Rng.create ~seed:2024 in
  let values' = Array.init 4 (fun _ -> Rng.int rng' 1000) in
  Alcotest.check Alcotest.(array int) "replayed stream" values values'

let test_instance_golden () =
  let nl = Netlist.random_gola (Rng.create ~seed:1985) ~elements:15 ~nets:150 in
  let arr = Arrangement.create nl in
  (* identity-order density of the canonical seed-1985 instance *)
  Alcotest.check Alcotest.int "identity density stable" (Arrangement.density arr)
    (Arrangement.density_of_order nl (Array.init 15 (fun i -> i)));
  Alcotest.check Alcotest.int "goto density stable" (Goto.density nl) (Goto.density nl)

let golden_run gfun schedule =
  let rng = Rng.create ~seed:7 in
  let nl = Netlist.random_gola rng ~elements:15 ~nets:150 in
  let arr = Arrangement.random rng nl in
  let module E = Figure1.Make (Linarr_problem.Swap) in
  let p = E.params ~gfun ~schedule ~budget:(Budget.Evaluations 2000) () in
  let r = E.run rng p arr in
  (int_of_float r.Mc_problem.best_cost, r.Mc_problem.stats.Mc_problem.uphill_accepted)

let test_engine_replay_identical () =
  (* The same configuration must replay bit-identically; this is the
     property EXPERIMENTS.md's tables rest on. *)
  let a = golden_run Gfun.g_one (Schedule.constant ~k:1 1.) in
  let b = golden_run Gfun.g_one (Schedule.constant ~k:1 1.) in
  Alcotest.check (Alcotest.pair Alcotest.int Alcotest.int) "g=1 replay" a b;
  let c = golden_run Gfun.six_temp_annealing (Schedule.geometric ~y1:3. ~ratio:0.9 ~k:6) in
  let d = golden_run Gfun.six_temp_annealing (Schedule.geometric ~y1:3. ~ratio:0.9 ~k:6) in
  Alcotest.check (Alcotest.pair Alcotest.int Alcotest.int) "six-temp replay" c d

let test_cross_substrate_replay () =
  let run_tsp () =
    let rng = Rng.create ~seed:31 in
    let inst = Tsp_instance.random_uniform rng ~n:30 in
    let t = Tour.random rng inst in
    let module E = Figure1.Make (Tsp_problem) in
    let p = E.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 0.05 |])
        ~budget:(Budget.Evaluations 3000) () in
    (E.run rng p t).Mc_problem.best_cost
  in
  Alcotest.check (Alcotest.float 0.) "tsp replay" (run_tsp ()) (run_tsp ());
  let run_part () =
    let rng = Rng.create ~seed:32 in
    let nl = Netlist.random_gola rng ~elements:30 ~nets:90 in
    let part = Bipartition.random_balanced rng nl in
    let module E = Figure1.Make (Partition_problem) in
    let p = E.params ~gfun:Gfun.g_one ~schedule:(Schedule.constant ~k:1 1.)
        ~budget:(Budget.Evaluations 3000) () in
    (E.run rng p part).Mc_problem.best_cost
  in
  Alcotest.check (Alcotest.float 0.) "partition replay" (run_part ()) (run_part ())

let test_suite_totals_locked () =
  (* The headline constants quoted in EXPERIMENTS.md. *)
  let gola = Suites.gola () in
  Alcotest.check Alcotest.int "GOLA starting total" 2457 (Suites.total_initial_density gola);
  Alcotest.check Alcotest.int "GOLA Goto total" 1882 (Suites.total_goto_density gola);
  let nola = Suites.nola () in
  Alcotest.check Alcotest.int "NOLA starting total" 3685 (Suites.total_initial_density nola);
  Alcotest.check Alcotest.int "NOLA Goto total" 3296 (Suites.total_goto_density nola)

let suite =
  [
    case "rng stream stable" test_rng_stream;
    case "canonical instance stable" test_instance_golden;
    case "engine replay identical" test_engine_replay_identical;
    case "cross-substrate replay identical" test_cross_substrate_replay;
    case "suite totals locked (EXPERIMENTS.md constants)" test_suite_totals_locked;
  ]
