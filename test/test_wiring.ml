(* Global wiring: L-routes, incremental congestion cost, greedy
   baseline, SA adapter. *)

let case name f = Alcotest.test_case name `Quick f

let ends_of_list l =
  Array.of_list (List.map (fun (x1, y1, x2, y2) -> { Wiring.x1; y1; x2; y2 }) l)

let test_single_net_cost () =
  (* One net from (0,0) to (2,1) routed HV: 2 horizontal edges on row 0
     plus 1 vertical edge at x = 2; each used once: cost = 3. *)
  let w = Wiring.create ~width:3 ~height:2 (ends_of_list [ (0, 0, 2, 1) ]) in
  Alcotest.check Alcotest.int "cost 3" 3 (Wiring.cost w);
  Alcotest.check Alcotest.int "h edge (0,0)" 1 (Wiring.h_usage w ~x:0 ~y:0);
  Alcotest.check Alcotest.int "h edge (1,0)" 1 (Wiring.h_usage w ~x:1 ~y:0);
  Alcotest.check Alcotest.int "v edge (2,0)" 1 (Wiring.v_usage w ~x:2 ~y:0);
  Alcotest.check Alcotest.int "max usage" 1 (Wiring.max_usage w);
  Wiring.check w

let test_flip_moves_the_path () =
  let w = Wiring.create ~width:3 ~height:2 (ends_of_list [ (0, 0, 2, 1) ]) in
  Wiring.flip w 0;
  (* VH: vertical at x = 0, then horizontal along y = 1 *)
  Alcotest.check Alcotest.int "cost still 3 (empty grid)" 3 (Wiring.cost w);
  Alcotest.check Alcotest.int "v edge (0,0)" 1 (Wiring.v_usage w ~x:0 ~y:0);
  Alcotest.check Alcotest.int "h edge (0,1)" 1 (Wiring.h_usage w ~x:0 ~y:1);
  Alcotest.check Alcotest.int "old h edge clear" 0 (Wiring.h_usage w ~x:0 ~y:0);
  Wiring.check w

let test_congestion_squares () =
  (* Two identical nets sharing every edge: usage 2 on 3 edges =
     cost 12; flipping one to the other L halves the sharing. *)
  let w =
    Wiring.create ~width:3 ~height:2 (ends_of_list [ (0, 0, 2, 1); (0, 0, 2, 1) ])
  in
  Alcotest.check Alcotest.int "shared cost 3 * 2^2" 12 (Wiring.cost w);
  Alcotest.check Alcotest.int "max usage 2" 2 (Wiring.max_usage w);
  Wiring.flip w 1;
  Alcotest.check Alcotest.int "separated cost 6 * 1" 6 (Wiring.cost w);
  Alcotest.check Alcotest.int "max usage 1" 1 (Wiring.max_usage w);
  Wiring.check w

let test_degenerate_net_flip_noop () =
  let w = Wiring.create ~width:3 ~height:3 (ends_of_list [ (0, 1, 2, 1) ]) in
  let before = Wiring.cost w in
  Wiring.flip w 0;
  Alcotest.check Alcotest.int "straight net unchanged" before (Wiring.cost w);
  Alcotest.check Alcotest.bool "orientation unchanged" true (Wiring.orientation w 0 = `HV);
  Wiring.check w

let test_validation () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Wiring.create ~width:1 ~height:5 [||]);
  invalid (fun () -> Wiring.create ~width:3 ~height:3 (ends_of_list [ (0, 0, 3, 1) ]));
  invalid (fun () -> Wiring.create ~width:3 ~height:3 (ends_of_list [ (1, 1, 1, 1) ]))

let test_overflow () =
  let w =
    Wiring.create ~width:3 ~height:2
      (ends_of_list [ (0, 0, 2, 0); (0, 0, 2, 0); (0, 0, 2, 0) ])
  in
  (* three straight nets stacked on the same two horizontal edges *)
  Alcotest.check Alcotest.int "overflow above capacity 2" 2 (Wiring.overflow w ~capacity:2);
  Alcotest.check Alcotest.int "no overflow above 3" 0 (Wiring.overflow w ~capacity:3)

let test_flip_involution () =
  let rng = Rng.create ~seed:1 in
  let ends = Wiring.random_instance rng ~width:6 ~height:5 ~nets:30 in
  let w = Wiring.create ~width:6 ~height:5 ends in
  let before = Wiring.cost w in
  Wiring.flip w 7;
  Wiring.flip w 7;
  Alcotest.check Alcotest.int "double flip restores" before (Wiring.cost w);
  Wiring.check w

let test_random_instance_valid () =
  let rng = Rng.create ~seed:2 in
  let ends = Wiring.random_instance rng ~width:4 ~height:7 ~nets:50 in
  Alcotest.check Alcotest.int "net count" 50 (Array.length ends);
  Array.iter
    (fun e ->
      Alcotest.check Alcotest.bool "endpoints distinct and on grid" true
        (Wiring.(e.x1) >= 0 && e.Wiring.x1 < 4 && e.Wiring.y2 < 7
        && not (e.Wiring.x1 = e.Wiring.x2 && e.Wiring.y1 = e.Wiring.y2)))
    ends

let test_greedy_never_worse () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 5 do
    let ends = Wiring.random_instance (Rng.split rng) ~width:8 ~height:8 ~nets:60 in
    let w = Wiring.create ~width:8 ~height:8 ends in
    let before = Wiring.cost w in
    let passes = Wiring.greedy_fixpoint w in
    Alcotest.check Alcotest.bool "cost not increased" true (Wiring.cost w <= before);
    Alcotest.check Alcotest.bool "fixpoint reached" true (passes < 50);
    Alcotest.check Alcotest.int "one more pass changes nothing" 0 (Wiring.greedy_pass w);
    Wiring.check w
  done

let test_adapter_roundtrip () =
  let rng = Rng.create ~seed:4 in
  let ends = Wiring.random_instance rng ~width:5 ~height:5 ~nets:40 in
  let w = Wiring.create ~width:5 ~height:5 ends in
  let before = Wiring.cost w in
  for _ = 1 to 100 do
    let j = Wiring.Problem.random_move rng w in
    Wiring.Problem.apply w j;
    Wiring.Problem.revert w j
  done;
  Alcotest.check Alcotest.int "restored" before (Wiring.cost w);
  Wiring.check w

let test_adapter_moves_skip_degenerate () =
  let w =
    Wiring.create ~width:3 ~height:3 (ends_of_list [ (0, 0, 2, 2); (0, 1, 2, 1) ])
  in
  let moves = List.of_seq (Wiring.Problem.moves w) in
  Alcotest.check Alcotest.(list int) "only the bent net" [ 0 ] moves

let test_sa_beats_naive () =
  let rng = Rng.create ~seed:5 in
  let ends = Wiring.random_instance rng ~width:8 ~height:8 ~nets:120 in
  let w = Wiring.create ~width:8 ~height:8 ends in
  let naive = Wiring.cost w in
  let module E = Figure1.Make (Wiring.Problem) in
  let p =
    E.params ~gfun:Gfun.g_one ~schedule:(Schedule.constant ~k:1 1.)
      ~budget:(Budget.Evaluations 5000) ()
  in
  let r = E.run rng p w in
  Alcotest.check Alcotest.bool "improves over all-HV" true
    (r.Mc_problem.best_cost < float_of_int naive);
  Wiring.check w

let prop_cost_consistent =
  QCheck.Test.make ~name:"qcheck: wiring cost survives random flip walks"
    (QCheck.make
       QCheck.Gen.(
         int_range 2 8 >>= fun width ->
         int_range 2 8 >>= fun height ->
         int_range 1 40 >>= fun nets ->
         int >|= fun seed -> (width, height, nets, seed)))
    (fun (width, height, nets, seed) ->
      let rng = Rng.create ~seed in
      let ends = Wiring.random_instance rng ~width ~height ~nets in
      let w = Wiring.create ~width ~height ends in
      for _ = 1 to 30 do
        Wiring.flip w (Rng.int rng nets)
      done;
      match Wiring.check w with () -> true | exception Failure _ -> false)

let suite =
  [
    case "single net cost and usages" test_single_net_cost;
    case "flip moves the path" test_flip_moves_the_path;
    case "congestion is squared" test_congestion_squares;
    case "degenerate net flip is a no-op" test_degenerate_net_flip_noop;
    case "validation" test_validation;
    case "overflow" test_overflow;
    case "flip is an involution" test_flip_involution;
    case "random instances valid" test_random_instance_valid;
    case "greedy fixpoint sound" test_greedy_never_worse;
    case "adapter apply/revert roundtrip" test_adapter_roundtrip;
    case "adapter skips degenerate nets" test_adapter_moves_skip_degenerate;
    case "SA beats the all-HV baseline" test_sa_beats_naive;
    QCheck_alcotest.to_alcotest prop_cost_consistent;
  ]
