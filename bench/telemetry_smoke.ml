(* Telemetry smoke, wired into `dune runtest` via the telemetry-smoke
   alias: a real 2-domain portfolio sweep with the whole telemetry
   bundle attached and the HTTP listener live, then every endpoint is
   scraped over a real socket:

   - /healthz must answer "ok";
   - /metrics must carry the expected Prometheus families (engine
     counters, a histogram with its +Inf bucket, per-worker pool
     gauges);
   - /runs is saved to telemetry_smoke.json, which the rule then
     feeds to check_json (schema sa-lab/telemetry/v1);
   - `sa_lab top --once` (the executable's path arrives as argv 1
     from the dune rule) must scrape the same live server and exit 0.

   Everything runs in one process except the `top` child, so the
   smoke needs no free-port coordination: the server binds an
   ephemeral port and the test reads the choice back. *)

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("telemetry-smoke: " ^ msg);
      exit 1)
    fmt

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let scrape ~port path =
  match Telemetry_http.get ~port path with
  | Ok (200, body) -> body
  | Ok (status, _) -> fail "GET %s: status %d, want 200" path status
  | Error msg -> fail "GET %s: %s" path msg

let () =
  let sa_lab =
    match Sys.argv with
    | [| _; exe |] -> exe
    | _ -> fail "usage: telemetry_smoke SA_LAB_EXE"
  in
  let inst = Tsp_instance.random_uniform (Rng.create ~seed:60) ~n:80 in
  let job label y =
    Portfolio.Job.figure1
      (module Tsp_problem)
      ~delta_ops:Tsp_problem.delta_ops ~label ~gfun:Gfun.metropolis
      ~schedule:(Schedule.of_array [| y |])
      ~make_state:(fun rng -> Tour.random rng inst)
      ()
  in
  let jobs = [ job "tsp-t0.1" 0.1; job "tsp-t0.3" 0.3; job "tsp-t1.0" 1.0 ] in
  let workers = 2 in
  let pool_stats = Pool.Stats.create ~clock:Obs.now ~workers () in
  let tele =
    Telemetry.create ~pool_stats ~workers
      ~labels:(List.map Portfolio.Job.label jobs)
      ()
  in
  let server = Telemetry_http.start ~handler:(Telemetry.handler tele) () in
  let port = Telemetry_http.port server in
  Fun.protect
    ~finally:(fun () -> Telemetry_http.stop server)
    (fun () ->
      (* Before any job runs: endpoints already answer, all Pending. *)
      if scrape ~port "/healthz" <> "ok\n" then fail "/healthz is not ok";
      if not (contains (scrape ~port "/runs") "\"pending\"") then
        fail "/runs before the sweep should report pending jobs";
      let report =
        Portfolio.sweep ~domains:workers
          ~observer:(Telemetry.standings_observer tele)
          ~job_observer:(Telemetry.job_observer tele)
          ~pool_stats (Rng.create ~seed:61)
          ~budget:(Budget.Evaluations 5_000) jobs
      in
      Printf.printf "sweep winner: %s\n"
        report.Portfolio.winner.Portfolio.label;
      let metrics = scrape ~port "/metrics" in
      List.iter
        (fun family ->
          if not (contains metrics family) then
            fail "/metrics is missing %S" family)
        [
          "sa_lab_proposed_total";
          "le=\"+Inf\"";
          "sa_lab_pool_tasks_run{worker=\"0\"}";
          "sa_lab_pool_tasks_run{worker=\"1\"}";
          "sa_lab_pool_idle_seconds{worker=\"0\"}";
        ];
      let runs = scrape ~port "/runs" in
      if not (contains runs "\"sa-lab/telemetry/v1\"") then
        fail "/runs is missing the schema tag";
      if contains runs "\"pending\"" then
        fail "/runs still reports pending jobs after the sweep";
      let oc = open_out "telemetry_smoke.json" in
      output_string oc runs;
      close_out oc;
      (* The dashboard against the same live server. *)
      let argv = [| sa_lab; "top"; "--once"; "--port"; string_of_int port |] in
      let pid =
        Unix.create_process sa_lab argv Unix.stdin Unix.stdout Unix.stderr
      in
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> print_endline "telemetry-smoke: ok"
      | _, Unix.WEXITED n -> fail "sa_lab top --once exited %d" n
      | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
          fail "sa_lab top --once killed by signal %d" n)
