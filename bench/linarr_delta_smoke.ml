(* `dune runtest` smoke (alias linarr-delta): the linarr incremental
   fast path must be indistinguishable from the classical
   apply/cost/revert path — same decisions, same counters, bit-identical
   costs — on all three engines, for both the paper's instance families
   (2-pin GOLA, multi-pin NOLA) and all three adapters.  A miniature
   twin of the bench delta comparison that runs in tier-1. *)

let bits = Int64.bits_of_float

let check msg ok =
  if not ok then begin
    Printf.eprintf "linarr-delta smoke FAILED: %s\n" msg;
    exit 1
  end

module Check (P : Mc_problem.S with type state = Arrangement.t) = struct
  module F1 = Figure1.Make (P)
  module F2 = Figure2.Make (P)
  module RL = Rejectionless.Make (P)

  let same msg (a : P.state Mc_problem.run) (b : P.state Mc_problem.run) =
    check (msg ^ ": best_cost")
      (bits a.Mc_problem.best_cost = bits b.Mc_problem.best_cost);
    check (msg ^ ": final_cost")
      (bits a.Mc_problem.final_cost = bits b.Mc_problem.final_cost);
    check (msg ^ ": stats") (a.Mc_problem.stats = b.Mc_problem.stats)

  let all ~msg ~seed ~evals ~delta_ops ~make_state =
    let gfun = Gfun.metropolis and schedule = Schedule.of_array [| 0.05 |] in
    let p1 = F1.params ~gfun ~schedule ~budget:(Budget.Evaluations evals) () in
    same (msg ^ "/figure1")
      (F1.run (Rng.create ~seed) p1 (make_state ()))
      (F1.run ~delta_ops (Rng.create ~seed) p1 (make_state ()));
    let p2 = F2.params ~gfun ~schedule ~budget:(Budget.Evaluations evals) () in
    same (msg ^ "/figure2")
      (F2.run (Rng.create ~seed) p2 (make_state ()))
      (F2.run ~delta_ops (Rng.create ~seed) p2 (make_state ()));
    let pr = RL.params ~gfun ~schedule ~budget:(Budget.Evaluations evals) in
    same (msg ^ "/rejectionless")
      (RL.run (Rng.create ~seed) pr (make_state ()))
      (RL.run ~delta_ops (Rng.create ~seed) pr (make_state ()))
end

let () =
  let nola =
    Netlist.random_nola (Rng.create ~seed:1) ~elements:48 ~nets:120 ~min_pins:2
      ~max_pins:5
  in
  let gola = Netlist.random_gola (Rng.create ~seed:2) ~elements:48 ~nets:140 in
  let module CS = Check (Linarr_problem.Swap) in
  CS.all ~msg:"swap/nola" ~seed:3 ~evals:4000
    ~delta_ops:Linarr_problem.Swap.delta_ops
    ~make_state:(fun () -> Arrangement.random (Rng.create ~seed:4) nola);
  CS.all ~msg:"swap/gola" ~seed:5 ~evals:4000
    ~delta_ops:Linarr_problem.Swap.delta_ops
    ~make_state:(fun () -> Arrangement.random (Rng.create ~seed:6) gola);
  let module CR = Check (Linarr_problem.Relocate) in
  CR.all ~msg:"relocate/gola" ~seed:7 ~evals:4000
    ~delta_ops:Linarr_problem.Relocate.delta_ops
    ~make_state:(fun () -> Arrangement.random (Rng.create ~seed:8) gola);
  let module CC = Check (Linarr_problem.Swap_sum_cuts) in
  CC.all ~msg:"swap-sum-cuts/nola" ~seed:9 ~evals:4000
    ~delta_ops:Linarr_problem.Swap_sum_cuts.delta_ops
    ~make_state:(fun () -> Arrangement.random (Rng.create ~seed:10) nola);
  print_endline "linarr-delta smoke ok: fast path = slow path on all engines"
