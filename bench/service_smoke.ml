(* sa_labd smoke, wired into `dune runtest` via the service-smoke
   alias.  Drives the real daemon binary (path arrives as argv 1 from
   the dune rule) through its whole durability story:

   - phase 1: boot on a fresh state directory with an ephemeral port,
     submit a small TSP job over a real socket, follow its JSONL event
     stream, record the final report, SIGTERM, and require exit 0 (the
     graceful-drain contract);
   - phase 2: same job on a second directory, SIGKILL the daemon as
     soon as a cadence checkpoint exists, restart over the directory,
     and require the resumed job's report to be byte-identical to the
     uninterrupted phase-1 report, with /healthz counting the
     resume. *)

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("service-smoke: " ^ msg);
      exit 1)
    fmt

let job_body =
  {|{"problem":"tsp","cities":50,"budget":3000000,"seed":23,"gfun":"Metropolis"}|}

let spawn exe ~dir =
  let port_file = Store.port_path ~dir in
  (* A SIGKILLed daemon leaves its old port file behind; drop it so we
     wait for the fresh daemon's announcement, not a stale port. *)
  (try Sys.remove port_file with Sys_error _ -> ());
  let pid =
    Unix.create_process exe
      [| exe; "--state-dir"; dir; "--runners"; "1"; "--checkpoint-every"; "2000" |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let rec wait_port tries =
    if tries = 0 then fail "daemon on %s never wrote its port file" dir
    else
      match
        let ic = open_in port_file in
        let line = input_line ic in
        close_in ic;
        int_of_string_opt (String.trim line)
      with
      | Some port -> port
      | None | (exception Sys_error _) | (exception End_of_file) ->
          Thread.delay 0.05;
          wait_port (tries - 1)
  in
  (pid, wait_port 200)

let get ~port path =
  match Telemetry_http.get ~port path with
  | Ok (status, body) -> (status, body)
  | Error e -> fail "GET %s: %s" path e

let submit ~port =
  match Telemetry_http.request ~meth:"POST" ~port ~body:job_body "/jobs" with
  | Ok (202, _, body) -> (
      match Obs.Json.parse body with
      | Ok json -> (
          match Obs.Json.member "id" json with
          | Some (Obs.Json.Int id) -> id
          | _ -> fail "POST /jobs answered 202 without an id")
      | Error e -> fail "POST /jobs: bad body: %s" e)
  | Ok (status, _, body) -> fail "POST /jobs: status %d, body %s" status body
  | Error e -> fail "POST /jobs: %s" e

let await_result ~port id =
  let path = Printf.sprintf "/jobs/%d" id in
  let rec go tries =
    if tries = 0 then fail "job %d never finished" id
    else
      let status, body = get ~port path in
      if status <> 200 then fail "GET %s: status %d" path status;
      match Obs.Json.parse body with
      | Error e -> fail "GET %s: bad JSON: %s" path e
      | Ok json -> (
          match Obs.Json.member "status" json with
          | Some (Obs.Json.String "done") -> (
              match Obs.Json.member "result" json with
              | Some result -> Obs.Json.to_string result
              | None -> fail "job %d is done but has no result" id)
          | Some (Obs.Json.String ("failed" | "cancelled")) ->
              fail "job %d ended badly: %s" id body
          | _ ->
              Thread.delay 0.05;
              go (tries - 1))
  in
  go 2_000

let terminate pid =
  Unix.kill pid Sys.sigterm;
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> fail "daemon exited %d after SIGTERM, want 0" n
  | Unix.WSIGNALED s -> fail "daemon died on signal %d after SIGTERM" s
  | Unix.WSTOPPED _ -> fail "daemon stopped rather than exiting"

let () =
  let exe =
    match Sys.argv with
    | [| _; exe |] -> exe
    | _ -> fail "usage: service_smoke SA_LABD_EXE"
  in
  (* Phase 1: uninterrupted reference run plus the streaming check. *)
  let dir1 = Filename.temp_dir "sa_labd_smoke1" "" in
  let pid1, port1 = spawn exe ~dir:dir1 in
  let id1 = submit ~port:port1 in
  let reference = await_result ~port:port1 id1 in
  (let status, body =
     match
       Telemetry_http.request ~meth:"GET" ~port:port1
         (Printf.sprintf "/jobs/%d/events" id1)
     with
     | Ok (status, _, body) -> (status, body)
     | Error e -> fail "GET events: %s" e
   in
   if status <> 200 then fail "GET events: status %d" status;
   let lines =
     String.split_on_char '\n' body |> List.filter (fun l -> l <> "")
   in
   if List.length lines < 3 then
     fail "event stream delivered only %d lines" (List.length lines);
   List.iter
     (fun line ->
       match Obs.Json.parse line with
       | Ok _ -> ()
       | Error e -> fail "event stream line is not JSON (%s): %s" e line)
     lines;
   Printf.printf "phase 1: job done, %d JSONL events streamed\n%!"
     (List.length lines));
  terminate pid1;
  Printf.printf "phase 1: SIGTERM drained, exit 0\n%!";
  (* Phase 2: SIGKILL once a checkpoint exists, restart, compare. *)
  let dir2 = Filename.temp_dir "sa_labd_smoke2" "" in
  let pid2, port2 = spawn exe ~dir:dir2 in
  let id2 = submit ~port:port2 in
  let rec wait_snapshot tries =
    if tries = 0 then fail "no cadence checkpoint ever appeared"
    else if Store.snapshots ~dir:dir2 id2 = [] then begin
      Thread.delay 0.01;
      wait_snapshot (tries - 1)
    end
  in
  wait_snapshot 2_000;
  Unix.kill pid2 Sys.sigkill;
  ignore (Unix.waitpid [] pid2);
  Printf.printf "phase 2: SIGKILL with %d snapshot(s) on disk\n%!"
    (List.length (Store.snapshots ~dir:dir2 id2));
  let pid3, port3 = spawn exe ~dir:dir2 in
  let resumed_result = await_result ~port:port3 id2 in
  if not (String.equal resumed_result reference) then
    fail "resumed report differs from the uninterrupted run:\n%s\nvs\n%s"
      resumed_result reference;
  (let _, body = get ~port:port3 "/healthz" in
   match Obs.Json.parse body with
   | Ok json -> (
       match Obs.Json.member "resumed" json with
       | Some (Obs.Json.Int n) when n >= 1 -> ()
       | _ -> fail "healthz did not count the resume: %s" body)
   | Error e -> fail "healthz: %s" e);
  terminate pid3;
  Printf.printf
    "phase 2: restart resumed job %d bit-identically; drained, exit 0\n%!" id2;
  print_endline "service-smoke: ok"
