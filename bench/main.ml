(* The benchmark harness, in two parts:

   1. Reproduction tables.  Every table of the paper's evaluation
      (4.1, 4.2(a)-(d)) plus the extension tables (E1 TSP, E2 circuit
      partition) and the ablations (A1-A3) is regenerated and printed
      in the paper's row layout.  EXPERIMENTS.md records the
      paper-vs-measured comparison of this output.

   2. Bechamel micro-benchmarks: one Test.make per table (at a
      miniature scale so a sample stays in the millisecond range) plus
      engine/substrate throughput benches.

   Flags: --scale F (budget multiplier for the tables, default 1.0),
   --seed N, --skip-tables, --skip-micro, --wide-tuning, --json PATH.

   Besides the human-readable text on stdout, a machine-readable
   summary (per-table best/mean cost and wall time, engine throughput,
   micro-bench estimates) is written to --json (default
   BENCH_results.json) so the perf trajectory has structured data. *)

let scale = ref 1.0
let seed = ref 42
let skip_tables = ref false
let skip_micro = ref false
let wide_tuning = ref false
let json_path = ref "BENCH_results.json"

let () =
  let specs =
    [
      ( "--scale",
        Arg.Set_float scale,
        "FACTOR  multiply every table budget by FACTOR (default 1.0; smaller = faster, noisier)" );
      ("--seed", Arg.Set_int seed, "N  master random seed (default 42)");
      ("--skip-tables", Arg.Set skip_tables, " skip the reproduction tables");
      ("--skip-micro", Arg.Set skip_micro, " skip the Bechamel micro-benchmarks");
      ( "--wide-tuning",
        Arg.Set wide_tuning,
        " tune temperatures over the wide grid (slower)" );
      ( "--json",
        Arg.Set_string json_path,
        "PATH  write the machine-readable summary to PATH (default BENCH_results.json)" );
    ]
  in
  let usage = "usage: bench [options]\n\noptions:" in
  Arg.parse specs
    (fun arg -> raise (Arg.Bad (Printf.sprintf "unexpected positional argument %S" arg)))
    usage

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '#')

(* ------------------------------------------------------------------ *)
(* Machine-readable summary accumulation                               *)
(* ------------------------------------------------------------------ *)

let table_summaries = ref ([] : Obs.Json.t list)
let micro_results = ref ([] : Obs.Json.t list)
let delta_results = ref ([] : Obs.Json.t list)
let scaling_results = ref ([] : Obs.Json.t list)
let engine_evals_per_sec = ref 0.
let profile_summary = ref Obs.Json.Null
let lint_summary = ref Obs.Json.Null
let service_summary = ref Obs.Json.Null

(* Per-table roll-up: wall time plus the spread of the numeric cells
   (for the reproduction tables those are costs/densities, so min and
   mean track solution quality release over release). *)
let summarize_table name wall (t : Report.t) =
  let numeric =
    List.concat_map
      (fun (_, cells) ->
        List.filter_map
          (function
            | Report.Int i -> Some (float_of_int i)
            | Report.Float f when Float.is_finite f -> Some f
            | Report.Float _ | Report.Text _ | Report.Missing -> None)
          cells)
      t.Report.rows
  in
  let best, mean =
    match numeric with
    | [] -> (Obs.Json.Null, Obs.Json.Null)
    | xs ->
        let a = Array.of_list xs in
        ( Obs.Json.Float (fst (Stats.min_max a)),
          Obs.Json.Float (Stats.mean a) )
  in
  table_summaries :=
    Obs.Json.Obj
      [
        ("name", Obs.Json.String name);
        ("title", Obs.Json.String t.Report.title);
        ("rows", Obs.Json.Int (List.length t.Report.rows));
        ("wall_seconds", Obs.Json.Float wall);
        ("best_cost", best);
        ("mean_cost", mean);
      ]
    :: !table_summaries

let write_json () =
  let json =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "sa-lab/bench-results/v1");
        ("scale", Obs.Json.Float !scale);
        ("seed", Obs.Json.Int !seed);
        ("engine_evals_per_sec", Obs.Json.Float !engine_evals_per_sec);
        ("profile", !profile_summary);
        ("tables_skipped", Obs.Json.Bool !skip_tables);
        ("tables", Obs.Json.List (List.rev !table_summaries));
        ("micro", Obs.Json.List (List.rev !micro_results));
        ("delta", Obs.Json.List (List.rev !delta_results));
        ("scaling", Obs.Json.List (List.rev !scaling_results));
        ("lint", !lint_summary);
        ("service", !service_summary);
      ]
  in
  let oc = open_out !json_path in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "[bench] summary written to %s\n" !json_path

(* ------------------------------------------------------------------ *)
(* Part 1: reproduction tables                                         *)
(* ------------------------------------------------------------------ *)

let print_tables () =
  let t0 = Sys.time () in
  section "Reproduction tables (Nahar/Sahni/Shragowitz, DAC 1985)";
  Printf.printf
    "budgets: 1 paper-second = %d proposed perturbations; global scale %.2f; seed %d\n"
    Suites.evals_per_second !scale !seed;
  let config =
    {
      Linarr_tables.default_config with
      scale = !scale;
      seed = !seed;
      wide_tuning = !wide_tuning;
    }
  in
  prerr_endline "[bench] tuning temperatures (section 4.2.1 protocol)...";
  let ctx = Linarr_tables.make_context ~config () in
  let emit_keep name f =
    prerr_endline ("[bench] " ^ name ^ "...");
    print_newline ();
    let t0 = Obs.now () in
    let table = f () in
    summarize_table name (Obs.now () -. t0) table;
    print_string (Report.render table);
    table
  in
  let emit name f = ignore (emit_keep name f) in
  emit "tuning table" (fun () -> Linarr_tables.tuning_table ctx);
  let measured_4_1 = emit_keep "table 4.1" (fun () -> Linarr_tables.table_4_1 ctx) in
  emit "agreement with the paper" (fun () ->
      Paper_data.agreement_table ctx ~measured:measured_4_1);
  emit "table 4.2(a)" (fun () -> Linarr_tables.table_4_2a ctx);
  emit "table 4.2(b)" (fun () -> Linarr_tables.table_4_2b ctx);
  emit "table 4.2(c)" (fun () -> Linarr_tables.table_4_2c ctx);
  emit "table 4.2(d)" (fun () -> Linarr_tables.table_4_2d ctx);
  emit "table E1 (TSP)" (fun () -> Ext_tables.table_tsp ~seed:!seed ~scale:!scale ());
  emit "table E2 (partition)" (fun () ->
      Ext_tables.table_partition ~seed:!seed ~scale:!scale ());
  emit "table E3 (placement)" (fun () ->
      Ext_tables.table_placement ~seed:!seed ~scale:!scale ());
  emit "table E5 (global wiring)" (fun () ->
      Ext_tables.table_wiring ~seed:!seed ~scale:!scale ());
  emit "table E6 (floorplanning)" (fun () ->
      Ext_tables.table_floorplan ~seed:!seed ~scale:!scale ());
  emit "table S1 (scaling)" (fun () -> Ext_tables.table_scaling ~seed:!seed ~scale:!scale ());
  emit "table E4 (convergence to optimum)" (fun () ->
      Ext_tables.table_convergence ~seed:!seed ~scale:!scale ());
  emit "table A8 (run-to-run variance)" (fun () ->
      Ext_tables.table_variance ~seed:!seed ~scale:!scale ());
  emit "table A1 (schedule sensitivity)" (fun () ->
      Ablation_tables.table_schedule_sensitivity ctx);
  emit "table A2 (defer threshold)" (fun () -> Ablation_tables.table_defer_threshold ctx);
  emit "table A3 (rejectionless)" (fun () -> Ablation_tables.table_rejectionless ctx);
  emit "table A4 (schedule shapes)" (fun () -> Ablation_tables.table_schedule_shapes ctx);
  emit "table A5 (temperature control)" (fun () ->
      Ablation_tables.table_temperature_control ctx);
  emit "table A6 (neighborhood)" (fun () -> Ablation_tables.table_neighborhood ctx);
  emit "table A7 (objective surrogate)" (fun () ->
      Ablation_tables.table_objective_surrogate ctx);
  emit "table A9 (tuning-grid resolution)" (fun () ->
      Ablation_tables.table_tuning_grid ctx);
  emit "table E7 (quadratic assignment)" (fun () ->
      Ext_tables.table_qap ~seed:!seed ~scale:!scale ());
  Printf.printf "\n[tables regenerated in %.1f s CPU]\n" (Sys.time () -. t0)

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

module F1 = Figure1.Make (Linarr_problem.Swap)
module F2 = Figure2.Make (Linarr_problem.Swap)
module TspF1 = Figure1.Make (Tsp_problem)

(* Fixed workloads for the micro-benches, built once. *)
let bench_netlist = Netlist.random_gola (Rng.create ~seed:1) ~elements:15 ~nets:150
let bench_start = Arrangement.random (Rng.create ~seed:2) bench_netlist
let bench_tsp = Tsp_instance.random_uniform (Rng.create ~seed:3) ~n:60
let bench_tour = Tour.random (Rng.create ~seed:4) bench_tsp
let bench_graph = Netlist.random_gola (Rng.create ~seed:5) ~elements:60 ~nets:180

let run_f1 gfun schedule evals () =
  let state = Arrangement.copy bench_start in
  let p = F1.params ~gfun ~schedule ~budget:(Budget.Evaluations evals) () in
  (F1.run (Rng.create ~seed:6) p state).Mc_problem.best_cost

(* Same walk with a live observer, to price the instrumentation
   against the null-observer run above. *)
let run_f1_observed make_observer gfun schedule evals () =
  let state = Arrangement.copy bench_start in
  let p = F1.params ~gfun ~schedule ~budget:(Budget.Evaluations evals) () in
  (F1.run ~observer:(make_observer ()) (Rng.create ~seed:6) p state)
    .Mc_problem.best_cost

let engine_tests =
  Test.make_grouped ~name:"engine"
    [
      Test.make ~name:"figure1/six-temp-annealing (1k evals)"
        (Staged.stage
           (run_f1 Gfun.six_temp_annealing (Schedule.geometric ~y1:3. ~ratio:0.9 ~k:6) 1000));
      Test.make ~name:"figure1/six-temp +ring-observer (1k evals)"
        (Staged.stage
           (run_f1_observed
              (fun () -> Obs.Ring.observer (Obs.Ring.create 1024))
              Gfun.six_temp_annealing
              (Schedule.geometric ~y1:3. ~ratio:0.9 ~k:6)
              1000));
      Test.make ~name:"figure1/six-temp +metrics-observer (1k evals)"
        (Staged.stage
           (run_f1_observed
              (fun () -> Obs.Metrics.observer (Obs.Metrics.create ()))
              Gfun.six_temp_annealing
              (Schedule.geometric ~y1:3. ~ratio:0.9 ~k:6)
              1000));
      Test.make ~name:"figure1/g=1 (1k evals)"
        (Staged.stage (run_f1 Gfun.g_one (Schedule.constant ~k:1 1.) 1000));
      Test.make ~name:"figure1/cubic-diff (1k evals)"
        (Staged.stage (run_f1 (Gfun.poly_diff ~degree:3) (Schedule.of_array [| 0.3 |]) 1000));
      Test.make ~name:"figure2/g=1 (1k evals)"
        (Staged.stage (fun () ->
             let state = Arrangement.copy bench_start in
             let p =
               F2.params ~gfun:Gfun.g_one ~schedule:(Schedule.constant ~k:1 1.)
                 ~budget:(Budget.Evaluations 1000) ()
             in
             (F2.run (Rng.create ~seed:7) p state).Mc_problem.best_cost));
      Test.make ~name:"tsp-figure1/metropolis (1k evals)"
        (Staged.stage (fun () ->
             let t = Tour.copy bench_tour in
             let p =
               TspF1.params ~gfun:Gfun.metropolis ~schedule:(Schedule.of_array [| 0.3 |])
                 ~budget:(Budget.Evaluations 1000) ()
             in
             (TspF1.run (Rng.create ~seed:8) p t).Mc_problem.best_cost));
    ]

let substrate_tests =
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"arrangement/swap+revert"
        (Staged.stage
           (let arr = Arrangement.copy bench_start in
            fun () ->
              Arrangement.swap_positions arr 3 11;
              Arrangement.swap_positions arr 3 11));
      Test.make ~name:"goto/15x150" (Staged.stage (fun () -> Goto.order bench_netlist));
      Test.make ~name:"kl/refine-60x180"
        (Staged.stage (fun () ->
             let part = Bipartition.random_balanced (Rng.create ~seed:9) bench_graph in
             Kl.refine part));
      Test.make ~name:"tsp/2-opt-descent-60"
        (Staged.stage (fun () ->
             let t = Tour.copy bench_tour in
             Tsp_heuristics.two_opt_descent t));
      Test.make ~name:"tsp/hull-insertion-60"
        (Staged.stage (fun () -> Tsp_heuristics.hull_insertion bench_tsp));
      Test.make ~name:"fm/refine-60x180"
        (Staged.stage (fun () ->
             let part = Bipartition.random_balanced (Rng.create ~seed:10) bench_graph in
             Fm.refine part));
      Test.make ~name:"placement/swap+revert"
        (Staged.stage
           (let p =
              Placement.random (Rng.create ~seed:11) ~rows:6 ~cols:8
                (Netlist.random_nola (Rng.create ~seed:12) ~elements:48 ~nets:120
                   ~min_pins:2 ~max_pins:4)
            in
            fun () ->
              Placement.swap_slots p 3 30;
              Placement.swap_slots p 3 30));
      Test.make ~name:"wiring/flip+revert"
        (Staged.stage
           (let w =
              Wiring.create ~width:10 ~height:10
                (Wiring.random_instance (Rng.create ~seed:13) ~width:10 ~height:10
                   ~nets:150)
            in
            fun () ->
              Wiring.flip w 7;
              Wiring.flip w 7));
      Test.make ~name:"floorplan/move+revert (20 blocks)"
        (Staged.stage
           (let f =
              Floorplan.create
                (Array.init 20 (fun i -> ((i mod 9) + 2, ((i * 3) mod 9) + 2)))
            in
            fun () ->
              Floorplan.apply f (Floorplan.Rotate 4);
              Floorplan.apply f (Floorplan.Rotate 4)));
      Test.make ~name:"exact/brute-force-8x32"
        (Staged.stage
           (let nl = Netlist.random_gola (Rng.create ~seed:14) ~elements:8 ~nets:32 in
            fun () -> Linarr_exact.optimal_density nl));
      Test.make ~name:"route/left-edge-15x150"
        (Staged.stage
           (let arr = Arrangement.copy bench_start in
            fun () -> Single_row.assign arr));
    ]

(* One Test.make per reproduction table, at a miniature scale: each
   sample regenerates the table end to end (runs + rendering), so the
   estimate tracks the whole pipeline's cost. *)
let mini_ctx =
  let mini_config =
    {
      Linarr_tables.scale = 0.004;
      three_min_scale = 0.004;
      tuning_seconds = 0.5;
      wide_tuning = false;
      seed = 3;
    }
  in
  lazy (Linarr_tables.make_context ~config:mini_config ())

let table_tests =
  let table name f = Test.make ~name (Staged.stage (fun () -> f (Lazy.force mini_ctx))) in
  Test.make_grouped ~name:"table"
    [
      table "4.1" Linarr_tables.table_4_1;
      table "4.2a" Linarr_tables.table_4_2a;
      table "4.2b" Linarr_tables.table_4_2b;
      table "4.2c" Linarr_tables.table_4_2c;
      table "4.2d" Linarr_tables.table_4_2d;
      Test.make ~name:"E1-tsp"
        (Staged.stage (fun () ->
             Ext_tables.table_tsp ~seed:3 ~scale:0.004 ~instances:2 ~cities:20 ()));
      Test.make ~name:"E2-partition"
        (Staged.stage (fun () ->
             Ext_tables.table_partition ~seed:3 ~scale:0.004 ~instances:2 ~elements:24
               ~edges:60 ()));
      table "A1-schedule" Ablation_tables.table_schedule_sensitivity;
      table "A2-defer" Ablation_tables.table_defer_threshold;
      table "A3-rejectionless" Ablation_tables.table_rejectionless;
      table "A4-shapes" Ablation_tables.table_schedule_shapes;
      table "A5-temp-control" Ablation_tables.table_temperature_control;
      table "A6-neighborhood" Ablation_tables.table_neighborhood;
      table "A7-objective" Ablation_tables.table_objective_surrogate;
    ]

let run_micro () =
  section "Bechamel micro-benchmarks";
  (* Build the miniature context (tuning + Goto caches) outside the
     measured region so the first table sample is not an outlier. *)
  ignore (Sys.opaque_identity (Lazy.force mini_ctx));
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let groups = [ engine_tests; substrate_tests; table_tests ] in
  List.iter
    (fun group ->
      let raw = Benchmark.all cfg instances group in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let names = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) results []) in
      List.iter
        (fun name ->
          let ols_result = Hashtbl.find results name in
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | Some [] | None -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols_result) in
          Printf.printf "%-48s %14.0f ns/run   r2 %.3f\n" name estimate r2;
          micro_results :=
            Obs.Json.Obj
              [
                ("name", Obs.Json.String name);
                ("ns_per_run", Obs.Json.Float estimate);
                ("r_square", Obs.Json.Float r2);
              ]
            :: !micro_results)
        names)
    groups

(* ------------------------------------------------------------------ *)
(* Delta fast path vs full recompute                                   *)
(* ------------------------------------------------------------------ *)

(* Each comparison times the same walk twice — once on the classical
   apply/cost/revert path, once on the [delta_ops] fast path — from
   identical start states and identical RNG streams, then records both
   step rates and whether the two final costs agree bit-for-bit (they
   must: the adapters' deltas are exact for the integer domains and
   match the cached-length arithmetic for TSP).  Fixed evaluation
   budgets, independent of --scale, so the ratios are comparable run
   to run. *)

let record_delta ~domain ~evals ~recompute_seconds ~delta_seconds ~costs_agree =
  let rate s = float_of_int evals /. s in
  let speedup = recompute_seconds /. delta_seconds in
  Printf.printf
    "%-28s %7d evals   recompute %11.0f evals/s   delta %11.0f evals/s   speedup %6.2fx   costs agree: %b\n"
    domain evals (rate recompute_seconds) (rate delta_seconds) speedup
    costs_agree;
  delta_results :=
    Obs.Json.Obj
      [
        ("domain", Obs.Json.String domain);
        ("evals", Obs.Json.Int evals);
        ("recompute_evals_per_sec", Obs.Json.Float (rate recompute_seconds));
        ("delta_evals_per_sec", Obs.Json.Float (rate delta_seconds));
        ("speedup", Obs.Json.Float speedup);
        ("costs_agree", Obs.Json.Bool costs_agree);
      ]
    :: !delta_results

module Delta_cmp (P : Mc_problem.S) = struct
  module E1 = Figure1.Make (P)
  module E2 = Figure2.Make (P)
  module ER = Rejectionless.Make (P)

  let agree a b = Int64.bits_of_float a = Int64.bits_of_float b

  let timed f =
    let t0 = Obs.now () in
    let r = f () in
    (Obs.now () -. t0, r.Mc_problem.final_cost)

  let figure1 ~domain ~evals ~gfun ~schedule ~seed ~delta_ops ~make_state =
    let p = E1.params ~gfun ~schedule ~budget:(Budget.Evaluations evals) () in
    let go d = timed (fun () -> E1.run ?delta_ops:d (Rng.create ~seed) p (make_state ())) in
    ignore (go None);
    (* warm caches *)
    let slow_t, slow_c = go None in
    let fast_t, fast_c = go (Some delta_ops) in
    record_delta ~domain ~evals ~recompute_seconds:slow_t ~delta_seconds:fast_t
      ~costs_agree:(agree slow_c fast_c)

  let figure2 ~domain ~evals ~gfun ~schedule ~seed ~delta_ops ~make_state =
    let p = E2.params ~gfun ~schedule ~budget:(Budget.Evaluations evals) () in
    let go d = timed (fun () -> E2.run ?delta_ops:d (Rng.create ~seed) p (make_state ())) in
    let slow_t, slow_c = go None in
    let fast_t, fast_c = go (Some delta_ops) in
    record_delta ~domain ~evals ~recompute_seconds:slow_t ~delta_seconds:fast_t
      ~costs_agree:(agree slow_c fast_c)

  let rejectionless ?sweep_cache ~domain ~evals ~gfun ~schedule ~seed ~delta_ops
      ~make_state () =
    let p = ER.params ~gfun ~schedule ~budget:(Budget.Evaluations evals) in
    let go d =
      timed (fun () ->
          ER.run ?delta_ops:d ?sweep_cache (Rng.create ~seed) p (make_state ()))
    in
    let slow_t, slow_c = go None in
    let fast_t, fast_c = go (Some delta_ops) in
    record_delta ~domain ~evals ~recompute_seconds:slow_t ~delta_seconds:fast_t
      ~costs_agree:(agree slow_c fast_c)
end

module Tsp_cmp = Delta_cmp (Tsp_problem)
module Oropt_cmp = Delta_cmp (Tsp_problem.Or_opt)
module Qap_cmp = Delta_cmp (Qap.Problem)
module Part_cmp = Delta_cmp (Partition_problem)
module Place_cmp = Delta_cmp (Placement.Problem)
module Linarr_swap_cmp = Delta_cmp (Linarr_problem.Swap)
module Linarr_reloc_cmp = Delta_cmp (Linarr_problem.Relocate)

let run_delta_comparison () =
  section "Delta fast path vs full recompute";
  (* A local optimum at low temperature is the fast path's home turf:
     nearly every proposal is rejected, and a rejection costs a
     delta-formula evaluation instead of apply + cost + revert. *)
  let tsp600 = Tsp_instance.random_uniform (Rng.create ~seed:30) ~n:600 in
  let tsp_start = Tsp_heuristics.nearest_neighbor tsp600 ~start:0 in
  let tsp3000 = Tsp_instance.random_uniform (Rng.create ~seed:44) ~n:3000 in
  (* Nearest-neighbor start, then a cheap greedy burn-in over the same
     proposal distribution the walks use: the measured region then sees
     mostly rejections, which is where the two paths differ. *)
  let tsp3000_start =
    let t = Tsp_heuristics.nearest_neighbor tsp3000 ~start:0 in
    let rng = Rng.create ~seed:45 in
    for _ = 1 to 500_000 do
      let i, j = Tsp_problem.random_move rng t in
      if Tour.two_opt_delta t i j < 0. then Tour.two_opt t i j
    done;
    t
  in
  let cold = Schedule.of_array [| 0.01 |] in
  Tsp_cmp.figure1 ~domain:"tsp-2opt-n3000-figure1" ~evals:30_000
    ~gfun:Gfun.metropolis ~schedule:cold ~seed:32
    ~delta_ops:Tsp_problem.delta_ops
    ~make_state:(fun () -> Tour.copy tsp3000_start);
  Oropt_cmp.figure1 ~domain:"tsp-oropt-n600-figure1" ~evals:30_000
    ~gfun:Gfun.metropolis ~schedule:cold ~seed:33
    ~delta_ops:Tsp_problem.Or_opt.delta_ops
    ~make_state:(fun () -> Tour.copy tsp_start);
  Tsp_cmp.figure2 ~domain:"tsp-2opt-n600-figure2" ~evals:30_000
    ~gfun:Gfun.metropolis ~schedule:cold ~seed:34
    ~delta_ops:Tsp_problem.delta_ops
    ~make_state:(fun () -> Tour.copy tsp_start);
  (* The weakest PR-4 row: a rejectionless sweep prices the whole
     neighborhood per step, so the delta path alone only won 1.4x.  The
     sweep cache re-prices just the moves the committed step affects,
     which needs the budget to cover several full sweeps (the 2-opt
     neighborhood at n=600 is ~180k moves) before reuse can show up. *)
  Tsp_cmp.rejectionless ~sweep_cache:Tsp_problem.sweep_cache
    ~domain:"tsp-2opt-n600-rejectionless" ~evals:1_800_000 ~gfun:Gfun.metropolis
    ~schedule:cold ~seed:35 ~delta_ops:Tsp_problem.delta_ops
    ~make_state:(fun () -> Tour.copy tsp_start)
    ();
  let qap = Qap.random_instance (Rng.create ~seed:36) ~n:64 ~max_entry:10 in
  Qap_cmp.figure1 ~domain:"qap-n64-figure1" ~evals:20_000 ~gfun:Gfun.metropolis
    ~schedule:(Schedule.of_array [| 20. |])
    ~seed:37 ~delta_ops:Qap.Problem.delta_ops
    ~make_state:(fun () -> Qap.copy qap);
  let part_nl = Netlist.random_gola (Rng.create ~seed:38) ~elements:200 ~nets:600 in
  let part_start = Bipartition.random_balanced (Rng.create ~seed:39) part_nl in
  Part_cmp.figure1 ~domain:"partition-200x600-figure1" ~evals:20_000
    ~gfun:Gfun.metropolis
    ~schedule:(Schedule.of_array [| 0.5 |])
    ~seed:40 ~delta_ops:Partition_problem.delta_ops
    ~make_state:(fun () -> Bipartition.copy part_start);
  let place_nl =
    Netlist.random_nola (Rng.create ~seed:41) ~elements:200 ~nets:500 ~min_pins:2
      ~max_pins:4
  in
  let place_start =
    Placement.random (Rng.create ~seed:42) ~rows:16 ~cols:16 place_nl
  in
  Place_cmp.figure1 ~domain:"placement-200-figure1" ~evals:20_000
    ~gfun:Gfun.metropolis
    ~schedule:(Schedule.of_array [| 0.5 |])
    ~seed:43 ~delta_ops:Placement.Problem.delta_ops
    ~make_state:(fun () -> Placement.copy place_start);
  (* Linarr — the paper's own benchmark.  The swap case runs a NOLA
     multi-pin instance (the paper's Table 4.2 family) from a greedy
     local optimum, so the measured region is lateral/rejection heavy;
     the trial evaluation sweeps only the diff region of each touched
     net instead of removing and re-adding whole spans.  The relocate
     baseline recomputes every cut per apply *and* per revert, so its
     budget is small and the win is large. *)
  let nola600 =
    Netlist.random_nola (Rng.create ~seed:46) ~elements:600 ~nets:1500
      ~min_pins:3 ~max_pins:6
  in
  let nola_start =
    let t = Arrangement.random (Rng.create ~seed:47) nola600 in
    let rng = Rng.create ~seed:53 in
    for _ = 1 to 50_000 do
      let p, q = Rng.pair_distinct rng (Arrangement.size t) in
      let dd, _ = Arrangement.swap_delta t p q in
      if dd < 0 then Arrangement.commit_swap_delta t p q
    done;
    t
  in
  Linarr_swap_cmp.figure1 ~domain:"linarr-swap-n600-figure1" ~evals:20_000
    ~gfun:Gfun.metropolis ~schedule:cold ~seed:48
    ~delta_ops:Linarr_problem.Swap.delta_ops
    ~make_state:(fun () -> Arrangement.copy nola_start);
  let gola500 =
    Netlist.random_gola (Rng.create ~seed:49) ~elements:500 ~nets:1500
  in
  let gola_start = Arrangement.random (Rng.create ~seed:51) gola500 in
  Linarr_reloc_cmp.figure1 ~domain:"linarr-relocate-n500-figure1" ~evals:2_000
    ~gfun:Gfun.metropolis ~schedule:cold ~seed:52
    ~delta_ops:Linarr_problem.Relocate.delta_ops
    ~make_state:(fun () -> Arrangement.copy gola_start)

(* ------------------------------------------------------------------ *)
(* Portfolio domain scaling                                            *)
(* ------------------------------------------------------------------ *)

(* The same 21-class racing portfolio timed at 1, 2, 4, and 8 worker
   domains.  Two things are recorded per domain count: the measured
   wall-clock speedup over the 1-domain run, and whether the report
   JSON is byte-identical to the 1-domain report — the determinism
   contract the portfolio scheduler makes.  Fixed budgets, independent
   of --scale, so the numbers are comparable run to run.  The speedups
   are whatever the hardware gives: on a single-CPU container every
   domain count measures ~1x (or less, from domain overhead); the
   byte-identity column must hold everywhere. *)

let run_portfolio_scaling () =
  section "Portfolio domain scaling (21-class race, TSP n=1000)";
  let inst = Tsp_instance.random_uniform (Rng.create ~seed:50) ~n:1000 in
  let schedule_for gfun =
    if Gfun.uses_temperature gfun then
      match Gfun.k gfun with
      | 1 -> Schedule.of_array [| 1.0 |]
      | k -> Schedule.geometric ~y1:1.0 ~ratio:0.9 ~k
    else Schedule.constant ~k:(Gfun.k gfun) 1.
  in
  let jobs =
    List.map
      (fun gfun ->
        Portfolio.Job.figure1
          (module Tsp_problem)
          ~delta_ops:Tsp_problem.delta_ops ~label:(Gfun.name gfun) ~gfun
          ~schedule:(schedule_for gfun)
          ~make_state:(fun rng -> Tour.random rng inst)
          ())
      (Gfun.catalog ~m:1000)
  in
  let race domains =
    let t0 = Obs.now () in
    let report =
      Portfolio.race ~domains (Rng.create ~seed:51)
        ~initial_budget:(Budget.Evaluations 2_000) jobs
    in
    (Obs.now () -. t0, Obs.Json.to_string (Portfolio.report_to_json report))
  in
  ignore (race 1);
  (* warm caches *)
  let base_wall, base_json = race 1 in
  List.iter
    (fun domains ->
      let wall, json = if domains = 1 then (base_wall, base_json) else race domains in
      let speedup = base_wall /. wall in
      let identical = String.equal json base_json in
      Printf.printf
        "domains %d: %.3f s wall   speedup %5.2fx   report identical: %b\n"
        domains wall speedup identical;
      scaling_results :=
        Obs.Json.Obj
          [
            ("case", Obs.Json.String "portfolio-race-tsp1000");
            ("domains", Obs.Json.Int domains);
            ("wall_seconds", Obs.Json.Float wall);
            ("speedup", Obs.Json.Float speedup);
            ("report_identical", Obs.Json.Bool identical);
          ]
        :: !scaling_results)
    [ 1; 2; 4; 8 ]

(* One timed null-observer engine run, long enough for a stable
   evaluations/sec figure; this is the headline throughput number of
   the JSON summary. *)
let measure_throughput () =
  section "Engine throughput";
  let evals = 100_000 in
  let state = Arrangement.copy bench_start in
  let p =
    F1.params ~gfun:Gfun.six_temp_annealing
      ~schedule:(Schedule.geometric ~y1:3. ~ratio:0.9 ~k:6)
      ~budget:(Budget.Evaluations evals) ()
  in
  let t0 = Obs.now () in
  let r = F1.run (Rng.create ~seed:20) p state in
  let dt = Obs.now () -. t0 in
  let done_evals = r.Mc_problem.stats.Mc_problem.evaluations in
  engine_evals_per_sec := float_of_int done_evals /. dt;
  Printf.printf
    "figure1/six-temp-annealing, %d evaluations, null observer: %.4g evals/sec (%.3f s wall)\n"
    done_evals !engine_evals_per_sec dt

(* The same walk under the sampling profiler.  Sampling is keyed to
   the evaluation counter, so under this fixed seed the sample count
   is exactly evals / cadence and the per-span split is reproducible
   run over run; check_json verifies that arithmetic on the summary
   embedded in the JSON. *)
let run_profile () =
  section "Sampling profiler";
  let evals = 20_000 in
  let state = Arrangement.copy bench_start in
  let p =
    F1.params ~gfun:Gfun.six_temp_annealing
      ~schedule:(Schedule.geometric ~y1:3. ~ratio:0.9 ~k:6)
      ~budget:(Budget.Evaluations evals) ()
  in
  let prof = Telemetry_profile.create () in
  ignore (F1.run ~observer:(Telemetry_profile.observer prof) (Rng.create ~seed:21) p state);
  Printf.printf
    "figure1/six-temp-annealing, %d evaluations: %d samples (cadence %d)\n"
    evals (Telemetry_profile.samples prof) (Telemetry_profile.cadence prof);
  List.iter
    (fun (span, self) -> Printf.printf "  %-24s %6d self samples\n" span self)
    (Telemetry_profile.self_by_span prof);
  profile_summary := Telemetry_profile.summary prof

(* ------------------------------------------------------------------ *)
(* Lint engine: incremental cache                                      *)
(* ------------------------------------------------------------------ *)

(* The syntactic lint pass over a synthetic source tree, once with an
   empty cache and once again with the cache it just filled.  The warm
   run must re-analyze zero files and return the same findings; the
   cold/warm wall-time pair is the headline number for the cache. *)
let run_lint_bench () =
  section "Lint cache (cold vs warm)";
  let files = 60 in
  let dir = Filename.temp_dir "sa_lint_bench" "" in
  let src = Filename.concat dir "src" in
  Sys.mkdir src 0o755;
  for i = 0 to files - 1 do
    let oc = open_out (Filename.concat src (Printf.sprintf "m%02d.ml" i)) in
    Printf.fprintf oc "let base = %d\n" i;
    for j = 0 to 40 do
      Printf.fprintf oc "let f%d x = x + base + %d\n" j j
    done;
    (* Every file carries one suppressed coercion (so directive parsing
       is on the timed path); every seventh also carries a live one. *)
    output_string oc
      "(* sa-lint: allow no-obj-magic *)\nlet id (x : int) : int = Obj.magic x\n";
    if i mod 7 = 0 then
      output_string oc "let unsafe (x : int) : float = Obj.magic x\n";
    close_out oc
  done;
  let rules = Lint_rules.builtin () in
  let cache =
    Lint_cache.create ~dir:(Filename.concat dir "cache") ~version:"bench"
  in
  let timed () =
    let t0 = Obs.now () in
    let report = Lint.run ~rules ~cache ~root:dir [ "src" ] in
    (Obs.now () -. t0, report)
  in
  let cold_s, cold = timed () in
  let warm_s, warm = timed () in
  let rec rm_rf p =
    if Sys.is_directory p then (
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p)
    else Sys.remove p
  in
  rm_rf dir;
  let speedup = cold_s /. Float.max warm_s 1e-9 in
  Printf.printf
    "%d files: cold %.4f s (%d analyzed), warm %.4f s (%d analyzed), %.1fx\n"
    cold.Lint.files_scanned cold_s cold.Lint.files_reanalyzed warm_s
    warm.Lint.files_reanalyzed speedup;
  if warm.Lint.files_reanalyzed <> 0 then
    failwith "lint bench: warm run re-analyzed files";
  if
    List.length warm.Lint.diagnostics <> List.length cold.Lint.diagnostics
    || warm.Lint.suppressions <> cold.Lint.suppressions
  then failwith "lint bench: warm run disagrees with cold run";
  lint_summary :=
    Obs.Json.Obj
      [
        ("files", Obs.Json.Int cold.Lint.files_scanned);
        ("findings", Obs.Json.Int (List.length cold.Lint.diagnostics));
        ("cold_seconds", Obs.Json.Float cold_s);
        ("warm_seconds", Obs.Json.Float warm_s);
        ("cold_reanalyzed", Obs.Json.Int cold.Lint.files_reanalyzed);
        ("warm_reanalyzed", Obs.Json.Int warm.Lint.files_reanalyzed);
        ("speedup", Obs.Json.Float speedup);
      ]

(* ------------------------------------------------------------------ *)
(* sa_labd: concurrent load and crash-resume                           *)
(* ------------------------------------------------------------------ *)

let rm_rf_dir p =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> go (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists p then go p

(* Phase A: the job daemon under a storm of small jobs over real
   sockets — client threads submit, poll to completion, and record
   submit-to-complete latency; a deliberately greedy client proves the
   quota rejects.  Phase B: a long job is drained mid-walk and a fresh
   service over the same state directory resumes it.  The summary
   (p50/p99 latency, rejected, resumed) lands in the JSON for
   check_json. *)
let run_service_bench () =
  section "Job service (sa_labd core)";
  let jobs_target = max 40 (int_of_float (1000. *. !scale)) in
  let dir = Filename.temp_dir "sa_service_bench" "" in
  let cfg =
    {
      (Service.default_config ~dir) with
      max_queue = jobs_target + 64;
      runners = 4;
      quota_burst = 16;
      quota_refill = 200.;
    }
  in
  let svc = Service.create cfg in
  let server = Telemetry_http.start_routed ~handler:(Service.handle svc) () in
  let port = Telemetry_http.port server in
  (* Quota storm: one client, a burst-and-a-half of instant posts, so
     some must bounce with 429. *)
  let spec_body seed =
    Printf.sprintf
      {|{"problem":"tsp","cities":12,"budget":300,"seed":%d,"gfun":"Metropolis"}|}
      seed
  in
  for i = 1 to cfg.quota_burst + 8 do
    ignore
      (Telemetry_http.request ~meth:"POST" ~port
         ~headers:[ ("x-client", "greedy") ]
         ~body:(spec_body i) "/jobs")
  done;
  (* Load storm: client threads submit and poll to completion. *)
  let client_threads = 8 in
  let per_thread = (jobs_target + client_threads - 1) / client_threads in
  let latencies = Array.make_matrix client_threads per_thread nan in
  let submit_one ~client seed =
    let rec go () =
      match
        Telemetry_http.request ~meth:"POST" ~port
          ~headers:[ ("x-client", client) ]
          ~body:(spec_body seed) "/jobs"
      with
      | Ok (202, _, body) -> (
          match Obs.Json.parse body with
          | Ok json -> (
              match Obs.Json.member "id" json with
              | Some (Obs.Json.Int id) -> id
              | _ -> failwith "service bench: 202 without an id")
          | Error e -> failwith ("service bench: bad 202 body: " ^ e))
      | Ok ((429 | 503), _, _) ->
          Thread.delay 0.01;
          go ()
      | Ok (status, _, body) ->
          failwith
            (Printf.sprintf "service bench: POST /jobs -> %d %s" status body)
      | Error e -> failwith ("service bench: POST /jobs: " ^ e)
    in
    go ()
  in
  let await_done id =
    let rec go () =
      match Telemetry_http.get ~port (Printf.sprintf "/jobs/%d" id) with
      | Ok (200, body) ->
          let terminal =
            match Obs.Json.parse body with
            | Ok json -> (
                match Obs.Json.member "status" json with
                | Some (Obs.Json.String ("done" | "failed" | "cancelled")) ->
                    true
                | _ -> false)
            | Error _ -> false
          in
          if not terminal then begin
            Thread.delay 0.002;
            go ()
          end
      | Ok (status, body) ->
          failwith (Printf.sprintf "service bench: GET job -> %d %s" status body)
      | Error e -> failwith ("service bench: GET job: " ^ e)
    in
    go ()
  in
  let worker w =
    let client = Printf.sprintf "client-%d" w in
    for i = 0 to per_thread - 1 do
      let t0 = Obs.now () in
      let id = submit_one ~client ((w * per_thread) + i) in
      await_done id;
      latencies.(w).(i) <- (Obs.now () -. t0) *. 1000.
    done
  in
  let t0 = Obs.now () in
  let threads = List.init client_threads (fun w -> Thread.create worker w) in
  List.iter Thread.join threads;
  let wall = Obs.now () -. t0 in
  let all =
    Array.to_list latencies |> Array.concat |> Array.to_seq
    |> Seq.filter Float.is_finite |> Array.of_seq
  in
  Array.sort compare all;
  let percentile p =
    let n = Array.length all in
    all.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let p50 = percentile 0.50 and p99 = percentile 0.99 in
  let _, _, rejected_quota, rejected_queue, _ = Service.counters svc in
  Service.drain svc;
  Telemetry_http.stop server;
  rm_rf_dir dir;
  if rejected_quota < 1 then
    failwith "service bench: the quota storm was never rejected";
  (* Phase B: drain a long walk mid-flight, then resume it in a fresh
     service over the same directory and let it finish. *)
  let dir2 = Filename.temp_dir "sa_service_resume" "" in
  let cfg2 =
    {
      (Service.default_config ~dir:dir2) with
      runners = 1;
      checkpoint_every = 2_000;
    }
  in
  let svc2 = Service.create cfg2 in
  let server2 = Telemetry_http.start_routed ~handler:(Service.handle svc2) () in
  let port2 = Telemetry_http.port server2 in
  let long_id =
    match
      Telemetry_http.request ~meth:"POST" ~port:port2
        ~body:
          {|{"problem":"tsp","cities":60,"budget":4000000,"seed":17,"gfun":"Metropolis"}|}
        "/jobs"
    with
    | Ok (202, _, body) -> (
        match Obs.Json.parse body with
        | Ok json -> (
            match Obs.Json.member "id" json with
            | Some (Obs.Json.Int id) -> id
            | _ -> failwith "service bench: resume POST lost its id")
        | Error e -> failwith ("service bench: resume POST: " ^ e))
    | Ok (status, _, body) ->
        failwith (Printf.sprintf "service bench: resume POST -> %d %s" status body)
    | Error e -> failwith ("service bench: resume POST: " ^ e)
  in
  let rec wait_for_snapshot tries =
    if tries = 0 then failwith "service bench: no snapshot appeared"
    else if Store.snapshots ~dir:dir2 long_id = [] then begin
      Thread.delay 0.01;
      wait_for_snapshot (tries - 1)
    end
  in
  wait_for_snapshot 2_000;
  Service.drain svc2;
  Telemetry_http.stop server2;
  let svc3 = Service.create cfg2 in
  let rec wait_result tries =
    if tries = 0 then failwith "service bench: resumed job never finished"
    else
      match Service.find_result svc3 long_id with
      | Some _ -> ()
      | None ->
          Thread.delay 0.01;
          wait_result (tries - 1)
  in
  wait_result 6_000;
  let _, _, _, _, resumed = Service.counters svc3 in
  Service.drain svc3;
  rm_rf_dir dir2;
  if resumed < 1 then failwith "service bench: restart resumed nothing";
  Printf.printf
    "%d jobs over HTTP (%d clients): %.3f s wall, p50 %.2f ms, p99 %.2f ms\n"
    jobs_target client_threads wall p50 p99;
  Printf.printf "quota rejections: %d   queue rejections: %d   resumed after restart: %d\n"
    rejected_quota rejected_queue resumed;
  service_summary :=
    Obs.Json.Obj
      [
        ("jobs", Obs.Json.Int jobs_target);
        ("completed", Obs.Json.Int (Array.length all));
        ("p50_ms", Obs.Json.Float p50);
        ("p99_ms", Obs.Json.Float p99);
        ("rejected", Obs.Json.Int rejected_quota);
        ("rejected_queue", Obs.Json.Int rejected_queue);
        ("resumed", Obs.Json.Int resumed);
      ]

let () =
  if not !skip_tables then print_tables ();
  measure_throughput ();
  run_profile ();
  run_delta_comparison ();
  run_portfolio_scaling ();
  run_lint_bench ();
  run_service_bench ();
  if not !skip_micro then run_micro ();
  write_json ();
  print_newline ()
