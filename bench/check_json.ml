(* Smoke validator for the bench harness's JSON summary: `check_json
   PATH` exits non-zero (with a message naming the failing check) when
   the file is missing, malformed, or structurally wrong.  Run by the
   bench-smoke alias so `dune runtest` catches a bench regression that
   breaks the machine-readable output. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("check_json: " ^ msg); exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: check_json BENCH_results.json";
        exit 2
  in
  if not (Sys.file_exists path) then fail "%s: no such file" path;
  let text =
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  let json =
    match Obs.Json.parse (String.trim text) with
    | Ok j -> j
    | Error msg -> fail "%s: malformed JSON: %s" path msg
  in
  let member name =
    match Obs.Json.member name json with
    | Some v -> v
    | None -> fail "%s: missing top-level field %S" path name
  in
  (match member "schema" with
  | Obs.Json.String "sa-lab/bench-results/v1" -> ()
  | Obs.Json.String other -> fail "%s: unexpected schema %S" path other
  | _ -> fail "%s: schema is not a string" path);
  (match Obs.Json.to_float (member "engine_evals_per_sec") with
  | Some v when v > 0. && Float.is_finite v -> ()
  | Some v -> fail "%s: engine_evals_per_sec = %g is not positive" path v
  | None -> fail "%s: engine_evals_per_sec is not a number" path);
  (match Obs.Json.to_float (member "scale") with
  | Some _ -> ()
  | None -> fail "%s: scale is not a number" path);
  (match member "tables" with
  | Obs.Json.List [] -> fail "%s: tables is empty" path
  | Obs.Json.List tables ->
      List.iteri
        (fun i t ->
          let tmember name =
            match Obs.Json.member name t with
            | Some v -> v
            | None -> fail "%s: tables[%d] missing field %S" path i name
          in
          (match tmember "name" with
          | Obs.Json.String _ -> ()
          | _ -> fail "%s: tables[%d].name is not a string" path i);
          (match Obs.Json.to_float (tmember "wall_seconds") with
          | Some v when v >= 0. -> ()
          | _ -> fail "%s: tables[%d].wall_seconds is not a non-negative number" path i);
          match Obs.Json.to_int (tmember "rows") with
          | Some r when r > 0 -> ()
          | _ -> fail "%s: tables[%d].rows is not a positive integer" path i)
        tables
  | _ -> fail "%s: tables is not a list" path);
  (match member "micro" with
  | Obs.Json.List _ -> ()
  | _ -> fail "%s: micro is not a list" path);
  Printf.printf "check_json: %s ok\n" path
