(* Schema validator for the repo's machine-readable JSON documents:
   `check_json PATH` exits non-zero (with a message naming the failing
   check) when the file is missing, malformed, or structurally wrong.
   The top-level "schema" field selects the rule set:

   - sa-lab/bench-results/v1     (bench/main.exe --json; bench-smoke alias)
   - sa-lab/lint-report/v2       (sa_lint --json / --json-file; @lint alias)
   - sa-lab/checkpoint/v1        (sa_lab run --checkpoint; resilience-smoke)
   - sa-lab/supervisor-report/v1 (sa_lab supervise --report; resilience-smoke)
   - sa-lab/portfolio-report/v1  (sa_lab portfolio --report; portfolio-smoke)
   - sa-lab/telemetry/v1         (the /runs endpoint; telemetry-smoke)

   Run by `dune runtest` through the aliases, so a regression that
   breaks any machine-readable output fails the tier-1 gate. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("check_json: " ^ msg); exit 1) fmt

(* The sampling-profiler summary embedded in bench results.  The
   profiler is evaluation-driven, so its arithmetic is exact: samples
   is events / cadence (integer division), and the per-span self
   samples can never exceed the total. *)
let check_profile path p =
  let field name =
    match Obs.Json.member name p with
    | Some v -> v
    | None -> fail "%s: profile missing field %S" path name
  in
  let int_field name =
    match Obs.Json.to_int (field name) with
    | Some v -> v
    | None -> fail "%s: profile.%s is not an integer" path name
  in
  let cadence = int_field "cadence" in
  if cadence <= 0 then fail "%s: profile.cadence = %d is not positive" path cadence;
  let events = int_field "events" in
  if events < 0 then fail "%s: profile.events is negative" path;
  let samples = int_field "samples" in
  if samples <> events / cadence then
    fail "%s: profile.samples = %d but %d events at cadence %d predict %d" path
      samples events cadence (events / cadence);
  match field "spans" with
  | Obs.Json.List spans ->
      let self_total = ref 0 in
      List.iteri
        (fun i s ->
          let sfield name =
            match Obs.Json.member name s with
            | Some v -> v
            | None -> fail "%s: profile.spans[%d] missing field %S" path i name
          in
          (match sfield "span" with
          | Obs.Json.String name when name <> "" -> ()
          | _ -> fail "%s: profile.spans[%d].span is not a non-empty string" path i);
          match Obs.Json.to_int (sfield "self") with
          | Some c when c > 0 -> self_total := !self_total + c
          | _ ->
              fail "%s: profile.spans[%d].self is not a positive integer" path i)
        spans;
      if !self_total > samples then
        fail "%s: profile.spans claim %d self samples but only %d were taken"
          path !self_total samples;
      if samples > 0 && spans = [] then
        fail "%s: profile took %d samples but lists no spans" path samples
  | _ -> fail "%s: profile.spans is not a list" path

let check_bench path member =
  (match Obs.Json.to_float (member "engine_evals_per_sec") with
  | Some v when v > 0. && Float.is_finite v -> ()
  | Some v -> fail "%s: engine_evals_per_sec = %g is not positive" path v
  | None -> fail "%s: engine_evals_per_sec is not a number" path);
  check_profile path (member "profile");
  (match Obs.Json.to_float (member "scale") with
  | Some _ -> ()
  | None -> fail "%s: scale is not a number" path);
  let tables_skipped =
    match member "tables_skipped" with
    | Obs.Json.Bool b -> b
    | _ -> fail "%s: tables_skipped is not a boolean" path
  in
  (match member "tables" with
  | Obs.Json.List [] when not tables_skipped ->
      fail "%s: tables is empty but tables_skipped is false" path
  | Obs.Json.List (_ :: _) when tables_skipped ->
      fail "%s: tables is non-empty but tables_skipped is true" path
  | Obs.Json.List tables ->
      List.iteri
        (fun i t ->
          let tmember name =
            match Obs.Json.member name t with
            | Some v -> v
            | None -> fail "%s: tables[%d] missing field %S" path i name
          in
          (match tmember "name" with
          | Obs.Json.String _ -> ()
          | _ -> fail "%s: tables[%d].name is not a string" path i);
          (match Obs.Json.to_float (tmember "wall_seconds") with
          | Some v when v >= 0. -> ()
          | _ -> fail "%s: tables[%d].wall_seconds is not a non-negative number" path i);
          match Obs.Json.to_int (tmember "rows") with
          | Some r when r > 0 -> ()
          | _ -> fail "%s: tables[%d].rows is not a positive integer" path i)
        tables
  | _ -> fail "%s: tables is not a list" path);
  (match member "micro" with
  | Obs.Json.List _ -> ()
  | _ -> fail "%s: micro is not a list" path);
  (match member "delta" with
  | Obs.Json.List [] -> fail "%s: delta is empty" path
  | Obs.Json.List entries ->
      List.iteri
        (fun i d ->
          let dmember name =
            match Obs.Json.member name d with
            | Some v -> v
            | None -> fail "%s: delta[%d] missing field %S" path i name
          in
          (match dmember "domain" with
          | Obs.Json.String s when s <> "" -> ()
          | _ -> fail "%s: delta[%d].domain is not a non-empty string" path i);
          (match Obs.Json.to_int (dmember "evals") with
          | Some e when e > 0 -> ()
          | _ -> fail "%s: delta[%d].evals is not a positive integer" path i);
          let positive_rate name =
            match Obs.Json.to_float (dmember name) with
            | Some v when v > 0. && Float.is_finite v -> ()
            | _ -> fail "%s: delta[%d].%s is not a positive finite number" path i name
          in
          positive_rate "recompute_evals_per_sec";
          positive_rate "delta_evals_per_sec";
          positive_rate "speedup";
          match dmember "costs_agree" with
          | Obs.Json.Bool _ -> ()
          | _ -> fail "%s: delta[%d].costs_agree is not a boolean" path i)
        entries;
      (* The paper's own benchmark may not silently drop off the perf
         trajectory: a linarr row per move kind must be present, and its
         fast path must agree with the recompute path bit-for-bit.  (The
         speedup itself is a measurement, not a schema target.) *)
      List.iter
        (fun prefix ->
          let matching =
            List.filter
              (fun d ->
                match Obs.Json.member "domain" d with
                | Some (Obs.Json.String s) ->
                    String.length s >= String.length prefix
                    && String.sub s 0 (String.length prefix) = prefix
                | _ -> false)
              entries
          in
          if matching = [] then
            fail "%s: delta has no %s-* row (linarr dropped off the trajectory)"
              path prefix;
          List.iter
            (fun d ->
              match Obs.Json.member "costs_agree" d with
              | Some (Obs.Json.Bool true) -> ()
              | _ ->
                  fail "%s: a %s-* delta row does not have costs_agree: true"
                    path prefix)
            matching)
        [ "linarr-swap"; "linarr-relocate" ]
  | _ -> fail "%s: delta is not a list" path);
  (match member "scaling" with
  | Obs.Json.List entries ->
      List.iteri
        (fun i s ->
          let smember name =
            match Obs.Json.member name s with
            | Some v -> v
            | None -> fail "%s: scaling[%d] missing field %S" path i name
          in
          (match smember "case" with
          | Obs.Json.String c when c <> "" -> ()
          | _ -> fail "%s: scaling[%d].case is not a non-empty string" path i);
          (match Obs.Json.to_int (smember "domains") with
          | Some d when d >= 1 -> ()
          | _ -> fail "%s: scaling[%d].domains is not a positive integer" path i);
          (match Obs.Json.to_float (smember "wall_seconds") with
          | Some w when w >= 0. && Float.is_finite w -> ()
          | _ ->
              fail "%s: scaling[%d].wall_seconds is not a non-negative number"
                path i);
          (* The speedup is a measurement, not a target: any positive
             finite value is structurally valid (a 1-CPU machine will
             legitimately report < 1x at several domains). *)
          (match Obs.Json.to_float (smember "speedup") with
          | Some v when v > 0. && Float.is_finite v -> ()
          | _ -> fail "%s: scaling[%d].speedup is not a positive finite number" path i);
          match smember "report_identical" with
          | Obs.Json.Bool true -> ()
          | Obs.Json.Bool false ->
              fail "%s: scaling[%d].report_identical is false — the portfolio \
                    determinism contract is broken"
                path i
          | _ -> fail "%s: scaling[%d].report_identical is not a boolean" path i)
        entries
  | _ -> fail "%s: scaling is not a list" path);
  (match member "lint" with
  | Obs.Json.Obj _ as l ->
      let lmember name =
        match Obs.Json.member name l with
        | Some v -> v
        | None -> fail "%s: lint missing field %S" path name
      in
      (match Obs.Json.to_int (lmember "files") with
      | Some f when f > 0 -> ()
      | _ -> fail "%s: lint.files is not a positive integer" path);
      (match Obs.Json.to_int (lmember "cold_reanalyzed") with
      | Some c when c > 0 -> ()
      | _ -> fail "%s: lint.cold_reanalyzed is not a positive integer" path);
      (* The contract the cache bench exists to witness: a warm run over
         an unchanged tree re-analyzes nothing. *)
      (match Obs.Json.to_int (lmember "warm_reanalyzed") with
      | Some 0 -> ()
      | Some n ->
          fail "%s: lint.warm_reanalyzed = %d — the warm cache re-analyzed files"
            path n
      | None -> fail "%s: lint.warm_reanalyzed is not an integer" path);
      let nonneg name =
        match Obs.Json.to_float (lmember name) with
        | Some v when v >= 0. && Float.is_finite v -> ()
        | _ -> fail "%s: lint.%s is not a non-negative finite number" path name
      in
      nonneg "cold_seconds";
      nonneg "warm_seconds";
      (match Obs.Json.to_float (lmember "speedup") with
      | Some v when v > 0. && Float.is_finite v -> ()
      | _ -> fail "%s: lint.speedup is not a positive finite number" path)
  | _ -> fail "%s: lint is not an object" path);
  (* The sa_labd load bench: concurrent jobs over real sockets must
     have completed, the quota must actually have rejected someone,
     and the kill-and-restart phase must have resumed a job. *)
  match member "service" with
  | Obs.Json.Obj _ as s ->
      let smember name =
        match Obs.Json.member name s with
        | Some v -> v
        | None -> fail "%s: service missing field %S" path name
      in
      let positive_int name =
        match Obs.Json.to_int (smember name) with
        | Some v when v >= 1 -> v
        | _ -> fail "%s: service.%s is not a positive integer" path name
      in
      let jobs = positive_int "jobs" in
      let completed = positive_int "completed" in
      if completed < jobs then
        fail "%s: service completed %d of %d submitted jobs" path completed jobs;
      ignore (positive_int "rejected");
      ignore (positive_int "resumed");
      (match Obs.Json.to_int (smember "rejected_queue") with
      | Some v when v >= 0 -> ()
      | _ -> fail "%s: service.rejected_queue is not a non-negative integer" path);
      let latency name =
        match Obs.Json.to_float (smember name) with
        | Some v when v >= 0. && Float.is_finite v -> v
        | _ -> fail "%s: service.%s is not a non-negative finite number" path name
      in
      let p50 = latency "p50_ms" in
      let p99 = latency "p99_ms" in
      if p99 < p50 then
        fail "%s: service.p99_ms = %g is below service.p50_ms = %g" path p99 p50
  | _ -> fail "%s: service is not an object" path

let check_lint path json member =
  let non_negative_int name =
    match Obs.Json.to_int (member name) with
    | Some v when v >= 0 -> v
    | _ -> fail "%s: %s is not a non-negative integer" path name
  in
  let files = non_negative_int "files_scanned" in
  let reanalyzed = non_negative_int "files_reanalyzed" in
  if reanalyzed > files then
    fail "%s: files_reanalyzed = %d exceeds files_scanned = %d" path
      reanalyzed files;
  let _typed = non_negative_int "typed_modules" in
  let _supp = non_negative_int "suppressions" in
  let errors = non_negative_int "error_count" in
  let warnings = non_negative_int "warning_count" in
  (match member "rules" with
  | Obs.Json.List [] -> fail "%s: rules is empty" path
  | Obs.Json.List rules ->
      List.iteri
        (fun i r ->
          let field name =
            match Obs.Json.member name r with
            | Some (Obs.Json.String s) when s <> "" -> s
            | _ -> fail "%s: rules[%d].%s is not a non-empty string" path i name
          in
          let _ = field "name" in
          let _ = field "doc" in
          match field "severity" with
          | "error" | "warning" -> ()
          | s -> fail "%s: rules[%d].severity %S is not error/warning" path i s)
        rules
  | _ -> fail "%s: rules is not a list" path);
  let counted = ref 0 in
  let baselined_true = ref 0 in
  (match member "diagnostics" with
  | Obs.Json.List diags ->
      List.iteri
        (fun i d ->
          let field name =
            match Obs.Json.member name d with
            | Some v -> v
            | None -> fail "%s: diagnostics[%d] missing field %S" path i name
          in
          (match (field "rule", field "file", field "message") with
          | Obs.Json.String _, Obs.Json.String _, Obs.Json.String _ -> ()
          | _ -> fail "%s: diagnostics[%d] rule/file/message must be strings" path i);
          (match Obs.Json.to_int (field "line") with
          | Some l when l >= 1 -> ()
          | _ -> fail "%s: diagnostics[%d].line is not a positive integer" path i);
          (match Obs.Json.to_int (field "col") with
          | Some c when c >= 0 -> ()
          | _ -> fail "%s: diagnostics[%d].col is not a non-negative integer" path i);
          (* Typed rules attach their witness as a call-path trace;
             syntactic rules attach []. *)
          (match field "trace" with
          | Obs.Json.List frames ->
              List.iteri
                (fun j f ->
                  let ffield name =
                    match Obs.Json.member name f with
                    | Some v -> v
                    | None ->
                        fail "%s: diagnostics[%d].trace[%d] missing field %S"
                          path i j name
                  in
                  (match (ffield "symbol", ffield "file") with
                  | Obs.Json.String s, Obs.Json.String _ when s <> "" -> ()
                  | _ ->
                      fail
                        "%s: diagnostics[%d].trace[%d] symbol/file must be \
                         non-empty strings"
                        path i j);
                  match (Obs.Json.to_int (ffield "line"),
                         Obs.Json.to_int (ffield "col")) with
                  | Some l, Some c when l >= 1 && c >= 0 -> ()
                  | _ ->
                      fail "%s: diagnostics[%d].trace[%d] line/col out of range"
                        path i j)
                frames
          | _ -> fail "%s: diagnostics[%d].trace is not a list" path i);
          (match Obs.Json.member "baselined" d with
          | Some (Obs.Json.Bool true) -> incr baselined_true
          | Some (Obs.Json.Bool false) | None -> ()
          | Some _ ->
              fail "%s: diagnostics[%d].baselined is not a boolean" path i);
          match field "severity" with
          | Obs.Json.String ("error" | "warning") -> incr counted
          | _ -> fail "%s: diagnostics[%d].severity is not error/warning" path i)
        diags;
      if !counted <> errors + warnings then
        fail "%s: error_count + warning_count = %d but %d diagnostics listed"
          path (errors + warnings) !counted
  | _ -> fail "%s: diagnostics is not a list" path);
  match Obs.Json.member "baseline" json with
  | None -> ()
  | Some b ->
      let stat name =
        match Option.bind (Obs.Json.member name b) Obs.Json.to_int with
        | Some v when v >= 0 -> v
        | _ -> fail "%s: baseline.%s is not a non-negative integer" path name
      in
      let matched = stat "matched" in
      let fresh = stat "fresh" in
      let _stale = stat "stale" in
      if matched + fresh <> !counted then
        fail
          "%s: baseline claims %d matched + %d fresh but %d diagnostics listed"
          path matched fresh !counted;
      if matched <> !baselined_true then
        fail "%s: baseline.matched = %d but %d diagnostics carry baselined=true"
          path matched !baselined_true

(* The checkpoint rule set leans on the resilience library itself:
   [Checkpoint.read] re-verifies the CRC, and [snapshot_of_json]
   re-runs the exact decoder a resume would use, so "check_json says
   ok" means "a resume would accept this file". *)
let check_checkpoint path =
  let payload =
    match Checkpoint.read ~path with Ok p -> p | Error msg -> fail "%s" msg
  in
  let pmember name =
    match Obs.Json.member name payload with
    | Some v -> v
    | None -> fail "%s: payload missing field %S" path name
  in
  (match pmember "engine" with
  | Obs.Json.String "" -> fail "%s: payload.engine is empty" path
  | Obs.Json.String _ -> ()
  | _ -> fail "%s: payload.engine is not a string" path);
  ignore (pmember "fingerprint");
  ignore (pmember "current");
  ignore (pmember "best");
  let snap =
    match Checkpoint.snapshot_of_json (pmember "snapshot") with
    | Ok s -> s
    | Error msg -> fail "%s: payload.snapshot: %s" path msg
  in
  if snap.Figure1.ticks < 0 then
    fail "%s: snapshot.ticks = %d is negative" path snap.Figure1.ticks;
  if not (Float.is_finite snap.Figure1.current_cost) then
    fail "%s: snapshot.current_cost is not finite" path;
  if not (Float.is_finite snap.Figure1.best_cost) then
    fail "%s: snapshot.best_cost is not finite" path;
  if snap.Figure1.best_cost > snap.Figure1.current_cost then
    fail "%s: snapshot.best_cost %g exceeds current_cost %g" path
      snap.Figure1.best_cost snap.Figure1.current_cost;
  match Rng.of_state snap.Figure1.rng with
  | Ok _ -> ()
  | Error msg -> fail "%s: snapshot.rng: %s" path msg

let check_supervisor_report path member =
  let non_negative_int name =
    match Obs.Json.to_int (member name) with
    | Some v when v >= 0 -> v
    | _ -> fail "%s: %s is not a non-negative integer" path name
  in
  let completed = non_negative_int "completed" in
  let quarantined = non_negative_int "quarantined" in
  let _retries = non_negative_int "retries" in
  match member "outcomes" with
  | Obs.Json.List outcomes ->
      let seen_completed = ref 0 and seen_quarantined = ref 0 in
      List.iteri
        (fun i o ->
          let field name =
            match Obs.Json.member name o with
            | Some v -> v
            | None -> fail "%s: outcomes[%d] missing field %S" path i name
          in
          (match field "label" with
          | Obs.Json.String s when s <> "" -> ()
          | _ -> fail "%s: outcomes[%d].label is not a non-empty string" path i);
          (match Obs.Json.to_int (field "attempts") with
          | Some a when a >= 1 -> ()
          | _ -> fail "%s: outcomes[%d].attempts is not a positive integer" path i);
          match field "status" with
          | Obs.Json.String "completed" -> (
              incr seen_completed;
              match Obs.Json.to_float (field "seconds") with
              | Some s when s >= 0. && Float.is_finite s -> ()
              | _ ->
                  fail "%s: outcomes[%d].seconds is not a non-negative number"
                    path i)
          | Obs.Json.String "quarantined" -> (
              incr seen_quarantined;
              match field "reason" with
              | Obs.Json.String r when r <> "" -> ()
              | _ ->
                  fail "%s: outcomes[%d].reason is not a non-empty string" path
                    i)
          | _ ->
              fail "%s: outcomes[%d].status is not completed/quarantined" path i)
        outcomes;
      if !seen_completed <> completed then
        fail "%s: completed = %d but %d completed outcomes listed" path
          completed !seen_completed;
      if !seen_quarantined <> quarantined then
        fail "%s: quarantined = %d but %d quarantined outcomes listed" path
          quarantined !seen_quarantined
  | _ -> fail "%s: outcomes is not a list" path

let check_portfolio_report path member =
  let check_standing ctx s =
    let field name =
      match Obs.Json.member name s with
      | Some v -> v
      | None -> fail "%s: %s missing field %S" path ctx name
    in
    let label =
      match field "label" with
      | Obs.Json.String l when l <> "" -> l
      | _ -> fail "%s: %s.label is not a non-empty string" path ctx
    in
    (* Costs are numbers, or null: a job that could not start scores
       [infinity], which the JSON writer renders as null. *)
    List.iter
      (fun name ->
        match field name with
        | Obs.Json.Int _ | Obs.Json.Float _ | Obs.Json.Null -> ()
        | _ -> fail "%s: %s.%s is not a number or null" path ctx name)
      [ "best_cost"; "final_cost" ];
    (match Obs.Json.to_int (field "evaluations") with
    | Some e when e >= 0 -> ()
    | _ -> fail "%s: %s.evaluations is not a non-negative integer" path ctx);
    (match field "failed" with
    | Obs.Json.Null | Obs.Json.String _ -> ()
    | _ -> fail "%s: %s.failed is not null or a string" path ctx);
    label
  in
  (match member "mode" with
  | Obs.Json.String ("race" | "sweep") -> ()
  | _ -> fail "%s: mode is not \"race\" or \"sweep\"" path);
  let jobs =
    match Obs.Json.to_int (member "jobs") with
    | Some j when j >= 1 -> j
    | _ -> fail "%s: jobs is not a positive integer" path
  in
  (match member "stopped_early" with
  | Obs.Json.Bool _ -> ()
  | _ -> fail "%s: stopped_early is not a boolean" path);
  (match Obs.Json.to_int (member "total_evaluations") with
  | Some t when t >= 0 -> ()
  | _ -> fail "%s: total_evaluations is not a non-negative integer" path);
  let winner_label = check_standing "winner" (member "winner") in
  match member "rounds" with
  | Obs.Json.List [] -> fail "%s: rounds is empty" path
  | Obs.Json.List rounds ->
      let last_labels = ref [] in
      List.iteri
        (fun i r ->
          let field name =
            match Obs.Json.member name r with
            | Some v -> v
            | None -> fail "%s: rounds[%d] missing field %S" path i name
          in
          (match Obs.Json.to_int (field "round") with
          | Some n when n = i + 1 -> ()
          | _ -> fail "%s: rounds[%d].round is not %d" path i (i + 1));
          (match Obs.Json.to_int (field "budget_evaluations") with
          | Some b when b >= 0 -> ()
          | _ ->
              fail "%s: rounds[%d].budget_evaluations is not a non-negative \
                    integer"
                path i);
          (match field "results" with
          | Obs.Json.List [] -> fail "%s: rounds[%d].results is empty" path i
          | Obs.Json.List results ->
              let labels =
                List.mapi
                  (fun j s ->
                    check_standing
                      (Printf.sprintf "rounds[%d].results[%d]" i j)
                      s)
                  results
              in
              if i = 0 && List.length labels <> jobs then
                fail "%s: rounds[0] ran %d jobs but jobs = %d" path
                  (List.length labels) jobs;
              last_labels := labels
          | _ -> fail "%s: rounds[%d].results is not a list" path i);
          match field "culled" with
          | Obs.Json.List culled ->
              List.iteri
                (fun j c ->
                  match c with
                  | Obs.Json.String l when List.mem l !last_labels -> ()
                  | Obs.Json.String l ->
                      fail "%s: rounds[%d].culled[%d] %S did not run this round"
                        path i j l
                  | _ -> fail "%s: rounds[%d].culled[%d] is not a string" path i j)
                culled
          | _ -> fail "%s: rounds[%d].culled is not a list" path i)
        rounds;
      if not (List.mem winner_label !last_labels) then
        fail "%s: winner %S is not in the last round's results" path
          winner_label
  | _ -> fail "%s: rounds is not a list" path

(* The /runs snapshot.  Every run slot must be internally coherent
   (status from the fixed vocabulary, counters non-negative, accepted
   never ahead of proposed) and the optional pool block must list one
   entry per worker for every counter. *)
let check_telemetry path json member =
  (match member "runs" with
  | Obs.Json.List [] -> fail "%s: runs is empty" path
  | Obs.Json.List runs ->
      List.iteri
        (fun i r ->
          let field name =
            match Obs.Json.member name r with
            | Some v -> v
            | None -> fail "%s: runs[%d] missing field %S" path i name
          in
          let non_negative_int name =
            match Obs.Json.to_int (field name) with
            | Some v when v >= 0 -> v
            | _ -> fail "%s: runs[%d].%s is not a non-negative integer" path i name
          in
          (match field "label" with
          | Obs.Json.String l when l <> "" -> ()
          | _ -> fail "%s: runs[%d].label is not a non-empty string" path i);
          (match field "status" with
          | Obs.Json.String ("pending" | "running" | "done" | "culled") -> ()
          | Obs.Json.String s ->
              fail "%s: runs[%d].status %S is not pending/running/done/culled"
                path i s
          | _ -> fail "%s: runs[%d].status is not a string" path i);
          let _ = non_negative_int "rung" in
          let _ = non_negative_int "temp" in
          let _ = non_negative_int "evaluations" in
          let proposed = non_negative_int "proposed" in
          let accepted = non_negative_int "accepted" in
          if accepted > proposed then
            fail "%s: runs[%d] accepted %d proposals but only %d were proposed"
              path i accepted proposed;
          List.iter
            (fun name ->
              match field name with
              | Obs.Json.Int _ | Obs.Json.Float _ | Obs.Json.Null -> ()
              | _ -> fail "%s: runs[%d].%s is not a number or null" path i name)
            [ "y"; "best_cost"; "current_cost" ];
          match Obs.Json.to_float (field "seconds") with
          | Some s when s >= 0. && Float.is_finite s -> ()
          | _ -> fail "%s: runs[%d].seconds is not a non-negative number" path i)
        runs
  | _ -> fail "%s: runs is not a list" path);
  match Obs.Json.member "pool" json with
  | None -> ()
  | Some pool ->
      let pfield name =
        match Obs.Json.member name pool with
        | Some v -> v
        | None -> fail "%s: pool missing field %S" path name
      in
      let workers =
        match Obs.Json.to_int (pfield "workers") with
        | Some w when w >= 1 -> w
        | _ -> fail "%s: pool.workers is not a positive integer" path
      in
      List.iter
        (fun name ->
          match pfield name with
          | Obs.Json.List cells when List.length cells = workers ->
              List.iteri
                (fun w c ->
                  match Obs.Json.to_float c with
                  | Some v when v >= 0. && Float.is_finite v -> ()
                  | _ ->
                      fail "%s: pool.%s[%d] is not a non-negative number" path
                        name w)
                cells
          | Obs.Json.List cells ->
              fail "%s: pool.%s lists %d entries for %d workers" path name
                (List.length cells) workers
          | _ -> fail "%s: pool.%s is not a list" path name)
        [ "tasks_run"; "steals"; "queue_depth"; "busy_seconds"; "idle_seconds" ]

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: check_json FILE.json";
        exit 2
  in
  if not (Sys.file_exists path) then fail "%s: no such file" path;
  let text =
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  let json =
    match Obs.Json.parse (String.trim text) with
    | Ok j -> j
    | Error msg -> fail "%s: malformed JSON: %s" path msg
  in
  let member name =
    match Obs.Json.member name json with
    | Some v -> v
    | None -> fail "%s: missing top-level field %S" path name
  in
  let schema =
    match member "schema" with
    | Obs.Json.String s -> s
    | _ -> fail "%s: schema is not a string" path
  in
  (match schema with
  | "sa-lab/bench-results/v1" -> check_bench path member
  | "sa-lab/lint-report/v2" -> check_lint path json member
  | "sa-lab/checkpoint/v1" -> check_checkpoint path
  | "sa-lab/supervisor-report/v1" -> check_supervisor_report path member
  | "sa-lab/portfolio-report/v1" -> check_portfolio_report path member
  | "sa-lab/telemetry/v1" -> check_telemetry path json member
  | other -> fail "%s: unknown schema %S" path other);
  Printf.printf "check_json: %s ok (%s)\n" path schema
