(* Schema validator for the repo's machine-readable JSON documents:
   `check_json PATH` exits non-zero (with a message naming the failing
   check) when the file is missing, malformed, or structurally wrong.
   The top-level "schema" field selects the rule set:

   - sa-lab/bench-results/v1     (bench/main.exe --json; bench-smoke alias)
   - sa-lab/lint-report/v1       (sa_lint --json / --json-file; @lint alias)
   - sa-lab/checkpoint/v1        (sa_lab run --checkpoint; resilience-smoke)
   - sa-lab/supervisor-report/v1 (sa_lab supervise --report; resilience-smoke)

   Run by `dune runtest` through the aliases, so a regression that
   breaks any machine-readable output fails the tier-1 gate. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("check_json: " ^ msg); exit 1) fmt

let check_bench path member =
  (match Obs.Json.to_float (member "engine_evals_per_sec") with
  | Some v when v > 0. && Float.is_finite v -> ()
  | Some v -> fail "%s: engine_evals_per_sec = %g is not positive" path v
  | None -> fail "%s: engine_evals_per_sec is not a number" path);
  (match Obs.Json.to_float (member "scale") with
  | Some _ -> ()
  | None -> fail "%s: scale is not a number" path);
  let tables_skipped =
    match member "tables_skipped" with
    | Obs.Json.Bool b -> b
    | _ -> fail "%s: tables_skipped is not a boolean" path
  in
  (match member "tables" with
  | Obs.Json.List [] when not tables_skipped ->
      fail "%s: tables is empty but tables_skipped is false" path
  | Obs.Json.List (_ :: _) when tables_skipped ->
      fail "%s: tables is non-empty but tables_skipped is true" path
  | Obs.Json.List tables ->
      List.iteri
        (fun i t ->
          let tmember name =
            match Obs.Json.member name t with
            | Some v -> v
            | None -> fail "%s: tables[%d] missing field %S" path i name
          in
          (match tmember "name" with
          | Obs.Json.String _ -> ()
          | _ -> fail "%s: tables[%d].name is not a string" path i);
          (match Obs.Json.to_float (tmember "wall_seconds") with
          | Some v when v >= 0. -> ()
          | _ -> fail "%s: tables[%d].wall_seconds is not a non-negative number" path i);
          match Obs.Json.to_int (tmember "rows") with
          | Some r when r > 0 -> ()
          | _ -> fail "%s: tables[%d].rows is not a positive integer" path i)
        tables
  | _ -> fail "%s: tables is not a list" path);
  (match member "micro" with
  | Obs.Json.List _ -> ()
  | _ -> fail "%s: micro is not a list" path);
  match member "delta" with
  | Obs.Json.List [] -> fail "%s: delta is empty" path
  | Obs.Json.List entries ->
      List.iteri
        (fun i d ->
          let dmember name =
            match Obs.Json.member name d with
            | Some v -> v
            | None -> fail "%s: delta[%d] missing field %S" path i name
          in
          (match dmember "domain" with
          | Obs.Json.String s when s <> "" -> ()
          | _ -> fail "%s: delta[%d].domain is not a non-empty string" path i);
          (match Obs.Json.to_int (dmember "evals") with
          | Some e when e > 0 -> ()
          | _ -> fail "%s: delta[%d].evals is not a positive integer" path i);
          let positive_rate name =
            match Obs.Json.to_float (dmember name) with
            | Some v when v > 0. && Float.is_finite v -> ()
            | _ -> fail "%s: delta[%d].%s is not a positive finite number" path i name
          in
          positive_rate "recompute_evals_per_sec";
          positive_rate "delta_evals_per_sec";
          positive_rate "speedup";
          match dmember "costs_agree" with
          | Obs.Json.Bool _ -> ()
          | _ -> fail "%s: delta[%d].costs_agree is not a boolean" path i)
        entries
  | _ -> fail "%s: delta is not a list" path

let check_lint path member =
  let non_negative_int name =
    match Obs.Json.to_int (member name) with
    | Some v when v >= 0 -> v
    | _ -> fail "%s: %s is not a non-negative integer" path name
  in
  let _files = non_negative_int "files_scanned" in
  let _supp = non_negative_int "suppressions" in
  let errors = non_negative_int "error_count" in
  let warnings = non_negative_int "warning_count" in
  (match member "rules" with
  | Obs.Json.List [] -> fail "%s: rules is empty" path
  | Obs.Json.List rules ->
      List.iteri
        (fun i r ->
          let field name =
            match Obs.Json.member name r with
            | Some (Obs.Json.String s) when s <> "" -> s
            | _ -> fail "%s: rules[%d].%s is not a non-empty string" path i name
          in
          let _ = field "name" in
          let _ = field "doc" in
          match field "severity" with
          | "error" | "warning" -> ()
          | s -> fail "%s: rules[%d].severity %S is not error/warning" path i s)
        rules
  | _ -> fail "%s: rules is not a list" path);
  match member "diagnostics" with
  | Obs.Json.List diags ->
      let counted = ref 0 in
      List.iteri
        (fun i d ->
          let field name =
            match Obs.Json.member name d with
            | Some v -> v
            | None -> fail "%s: diagnostics[%d] missing field %S" path i name
          in
          (match (field "rule", field "file", field "message") with
          | Obs.Json.String _, Obs.Json.String _, Obs.Json.String _ -> ()
          | _ -> fail "%s: diagnostics[%d] rule/file/message must be strings" path i);
          (match Obs.Json.to_int (field "line") with
          | Some l when l >= 1 -> ()
          | _ -> fail "%s: diagnostics[%d].line is not a positive integer" path i);
          (match Obs.Json.to_int (field "col") with
          | Some c when c >= 0 -> ()
          | _ -> fail "%s: diagnostics[%d].col is not a non-negative integer" path i);
          match field "severity" with
          | Obs.Json.String ("error" | "warning") -> incr counted
          | _ -> fail "%s: diagnostics[%d].severity is not error/warning" path i)
        diags;
      if !counted <> errors + warnings then
        fail "%s: error_count + warning_count = %d but %d diagnostics listed"
          path (errors + warnings) !counted
  | _ -> fail "%s: diagnostics is not a list" path

(* The checkpoint rule set leans on the resilience library itself:
   [Checkpoint.read] re-verifies the CRC, and [snapshot_of_json]
   re-runs the exact decoder a resume would use, so "check_json says
   ok" means "a resume would accept this file". *)
let check_checkpoint path =
  let payload =
    match Checkpoint.read ~path with Ok p -> p | Error msg -> fail "%s" msg
  in
  let pmember name =
    match Obs.Json.member name payload with
    | Some v -> v
    | None -> fail "%s: payload missing field %S" path name
  in
  (match pmember "engine" with
  | Obs.Json.String "" -> fail "%s: payload.engine is empty" path
  | Obs.Json.String _ -> ()
  | _ -> fail "%s: payload.engine is not a string" path);
  ignore (pmember "fingerprint");
  ignore (pmember "current");
  ignore (pmember "best");
  let snap =
    match Checkpoint.snapshot_of_json (pmember "snapshot") with
    | Ok s -> s
    | Error msg -> fail "%s: payload.snapshot: %s" path msg
  in
  if snap.Figure1.ticks < 0 then
    fail "%s: snapshot.ticks = %d is negative" path snap.Figure1.ticks;
  if not (Float.is_finite snap.Figure1.current_cost) then
    fail "%s: snapshot.current_cost is not finite" path;
  if not (Float.is_finite snap.Figure1.best_cost) then
    fail "%s: snapshot.best_cost is not finite" path;
  if snap.Figure1.best_cost > snap.Figure1.current_cost then
    fail "%s: snapshot.best_cost %g exceeds current_cost %g" path
      snap.Figure1.best_cost snap.Figure1.current_cost;
  match Rng.of_state snap.Figure1.rng with
  | Ok _ -> ()
  | Error msg -> fail "%s: snapshot.rng: %s" path msg

let check_supervisor_report path member =
  let non_negative_int name =
    match Obs.Json.to_int (member name) with
    | Some v when v >= 0 -> v
    | _ -> fail "%s: %s is not a non-negative integer" path name
  in
  let completed = non_negative_int "completed" in
  let quarantined = non_negative_int "quarantined" in
  let _retries = non_negative_int "retries" in
  match member "outcomes" with
  | Obs.Json.List outcomes ->
      let seen_completed = ref 0 and seen_quarantined = ref 0 in
      List.iteri
        (fun i o ->
          let field name =
            match Obs.Json.member name o with
            | Some v -> v
            | None -> fail "%s: outcomes[%d] missing field %S" path i name
          in
          (match field "label" with
          | Obs.Json.String s when s <> "" -> ()
          | _ -> fail "%s: outcomes[%d].label is not a non-empty string" path i);
          (match Obs.Json.to_int (field "attempts") with
          | Some a when a >= 1 -> ()
          | _ -> fail "%s: outcomes[%d].attempts is not a positive integer" path i);
          match field "status" with
          | Obs.Json.String "completed" -> (
              incr seen_completed;
              match Obs.Json.to_float (field "seconds") with
              | Some s when s >= 0. && Float.is_finite s -> ()
              | _ ->
                  fail "%s: outcomes[%d].seconds is not a non-negative number"
                    path i)
          | Obs.Json.String "quarantined" -> (
              incr seen_quarantined;
              match field "reason" with
              | Obs.Json.String r when r <> "" -> ()
              | _ ->
                  fail "%s: outcomes[%d].reason is not a non-empty string" path
                    i)
          | _ ->
              fail "%s: outcomes[%d].status is not completed/quarantined" path i)
        outcomes;
      if !seen_completed <> completed then
        fail "%s: completed = %d but %d completed outcomes listed" path
          completed !seen_completed;
      if !seen_quarantined <> quarantined then
        fail "%s: quarantined = %d but %d quarantined outcomes listed" path
          quarantined !seen_quarantined
  | _ -> fail "%s: outcomes is not a list" path

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: check_json FILE.json";
        exit 2
  in
  if not (Sys.file_exists path) then fail "%s: no such file" path;
  let text =
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  let json =
    match Obs.Json.parse (String.trim text) with
    | Ok j -> j
    | Error msg -> fail "%s: malformed JSON: %s" path msg
  in
  let member name =
    match Obs.Json.member name json with
    | Some v -> v
    | None -> fail "%s: missing top-level field %S" path name
  in
  let schema =
    match member "schema" with
    | Obs.Json.String s -> s
    | _ -> fail "%s: schema is not a string" path
  in
  (match schema with
  | "sa-lab/bench-results/v1" -> check_bench path member
  | "sa-lab/lint-report/v1" -> check_lint path member
  | "sa-lab/checkpoint/v1" -> check_checkpoint path
  | "sa-lab/supervisor-report/v1" -> check_supervisor_report path member
  | other -> fail "%s: unknown schema %S" path other);
  Printf.printf "check_json: %s ok (%s)\n" path schema
